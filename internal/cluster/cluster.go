// Package cluster describes the hardware and network environment of a
// device–edge–cloud hierarchy: node compute capabilities (FLOPS), network
// paths (bandwidth, propagation latency), and paper-calibrated presets for
// the testbed the LEIME paper evaluates on (Raspberry Pi 3B+, Jetson Nano,
// an i7-3770 edge desktop, and a V100-class cloud).
//
// All capabilities are expressed as effective floating-point operations per
// second. Only the ratios between nodes drive LEIME's decisions, so the
// presets are calibrated to the ratios the paper reports (e.g. Jetson Nano
// outperforms a Raspberry Pi 3B+ by 8.2x on Inception v3) rather than to
// vendor peak numbers.
package cluster

import (
	"errors"
	"fmt"
)

// Node is a compute node participating in inference.
type Node struct {
	// Name identifies the node in logs and experiment tables.
	Name string
	// FLOPS is the node's effective floating-point throughput, in
	// floating-point operations per second.
	FLOPS float64
}

// Validate reports whether the node is usable.
func (n Node) Validate() error {
	if n.FLOPS <= 0 {
		return fmt.Errorf("cluster: node %q has non-positive FLOPS %v", n.Name, n.FLOPS)
	}
	return nil
}

// ComputeSeconds returns the time in seconds the node needs to perform the
// given number of floating point operations.
func (n Node) ComputeSeconds(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / n.FLOPS
}

// Path is a network link between two tiers of the hierarchy.
type Path struct {
	// BandwidthBps is the usable bandwidth in bits per second.
	BandwidthBps float64
	// LatencySec is the one-way propagation / connection-setup latency in
	// seconds (the paper's L terms).
	LatencySec float64
}

// Validate reports whether the path is usable.
func (p Path) Validate() error {
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("cluster: path has non-positive bandwidth %v", p.BandwidthBps)
	}
	if p.LatencySec < 0 {
		return fmt.Errorf("cluster: path has negative latency %v", p.LatencySec)
	}
	return nil
}

// TransferSeconds returns the time in seconds to move the given number of
// bytes across the path, including the propagation latency.
func (p Path) TransferSeconds(bytes float64) float64 {
	if bytes <= 0 {
		return p.LatencySec
	}
	return bytes*8/p.BandwidthBps + p.LatencySec
}

// Env aggregates everything the exit-setting cost model (paper eqs. 1–4)
// needs to know about the environment: average device capability, edge and
// cloud capability, and the device–edge and edge–cloud paths.
type Env struct {
	// DeviceFLOPS is the average available device capability (F^d_av).
	DeviceFLOPS float64
	// EdgeFLOPS is the average available edge capability (F^e_av). This is
	// the per-device share when the edge is serving multiple devices, i.e.
	// it already reflects edge system load.
	EdgeFLOPS float64
	// CloudFLOPS is the cloud capability (F^c).
	CloudFLOPS float64
	// DeviceEdge is the device–edge path (B^e_av, L^e_av).
	DeviceEdge Path
	// EdgeCloud is the edge–cloud path (B^c_av, L^c_av).
	EdgeCloud Path
}

// Validate reports whether all environment parameters are usable.
func (e Env) Validate() error {
	var errs []error
	if e.DeviceFLOPS <= 0 {
		errs = append(errs, fmt.Errorf("cluster: DeviceFLOPS %v must be positive", e.DeviceFLOPS))
	}
	if e.EdgeFLOPS <= 0 {
		errs = append(errs, fmt.Errorf("cluster: EdgeFLOPS %v must be positive", e.EdgeFLOPS))
	}
	if e.CloudFLOPS <= 0 {
		errs = append(errs, fmt.Errorf("cluster: CloudFLOPS %v must be positive", e.CloudFLOPS))
	}
	if err := e.DeviceEdge.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("device-edge: %w", err))
	}
	if err := e.EdgeCloud.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("edge-cloud: %w", err))
	}
	return errors.Join(errs...)
}

// WithEdgeLoad returns a copy of the environment whose edge capability is
// scaled down by the given load factor in (0, 1]. share=1 means an idle edge
// fully available to this device; share=0.1 means the device only gets 10%
// of the edge (e.g. nine other tenants).
func (e Env) WithEdgeLoad(share float64) Env {
	out := e
	out.EdgeFLOPS = e.EdgeFLOPS * share
	return out
}

// WithDeviceEdge returns a copy of the environment with a replacement
// device–edge path.
func (e Env) WithDeviceEdge(p Path) Env {
	out := e
	out.DeviceEdge = p
	return out
}

// Paper-calibrated node presets. FLOPS values are effective (achieved on
// dense conv workloads), chosen so that the capability ratios match those
// reported in the paper: Jetson Nano ~8.2x Raspberry Pi 3B+ (Inception v3,
// §II-A); the edge desktop well above both; the cloud GPU far above the edge.
var (
	// RaspberryPi3B is a Raspberry Pi 3B+ (ARM Cortex-A53).
	RaspberryPi3B = Node{Name: "raspberry-pi-3b+", FLOPS: 1.2e9}
	// JetsonNano is an NVIDIA Jetson Nano (Maxwell GPU), 8.2x the Pi.
	JetsonNano = Node{Name: "jetson-nano", FLOPS: 9.84e9}
	// EdgeDesktop is the i7-3770 edge server of the paper's testbed.
	EdgeDesktop = Node{Name: "edge-i7-3770", FLOPS: 6.0e10}
	// CloudV100 is a Tesla V100-class cloud instance.
	CloudV100 = Node{Name: "cloud-v100", FLOPS: 2.0e12}
)

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return v * 1e6 }

// Paper-calibrated path presets.
var (
	// WiFiDefault is the default device–edge WiFi path. The paper sweeps
	// 1–30 Mbps and 10–200 ms; this is a mid-range operating point.
	WiFiDefault = Path{BandwidthBps: Mbps(10), LatencySec: 0.020}
	// InternetDefault is the default edge–cloud Internet path.
	InternetDefault = Path{BandwidthBps: Mbps(50), LatencySec: 0.030}
)

// TestbedEnv returns the paper's testbed environment for a given end device,
// with an idle edge.
func TestbedEnv(device Node) Env {
	return Env{
		DeviceFLOPS: device.FLOPS,
		EdgeFLOPS:   EdgeDesktop.FLOPS,
		CloudFLOPS:  CloudV100.FLOPS,
		DeviceEdge:  WiFiDefault,
		EdgeCloud:   InternetDefault,
	}
}
