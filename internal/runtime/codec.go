package runtime

import (
	"fmt"
	"sort"

	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// Binary wire codecs for the closed protocol set. Each message type gets a
// stable codec ID and a hand-rolled encode/decode pair that is the exact
// inverse of the other; RegisterMessages installs them next to the gob
// registrations, so every tier negotiates the binary fast path for these
// types and falls back to gob only for unregistered (test or experimental)
// bodies. The codeccomplete analyzer enforces that every type registered
// here with rpc.Register also appears below.
//
// IDs are wire contract: never reuse one for a different type. Field order
// within each codec is likewise frozen — append-only evolution requires a
// new ID (or a wire version bump).
const (
	codecIDRegisterReq      = 1
	codecIDRegisterResp     = 2
	codecIDFirstBlockReq    = 3
	codecIDSecondBlockReq   = 4
	codecIDThirdBlockReq    = 5
	codecIDTaskResp         = 6
	codecIDQueueStatReq     = 7
	codecIDQueueStatResp    = 8
	codecIDUpdateReq        = 9
	codecIDUnregisterReq    = 10
	codecIDUnregisterResp   = 11
	codecIDEdgeStatsReq     = 12
	codecIDEdgeStatsResp    = 13
	codecIDHeartbeatReq     = 14
	codecIDHeartbeatResp    = 15
	codecIDStealReq         = 16
	codecIDStageInstallReq  = 17
	codecIDStageInstallResp = 18
	codecIDActivationReq    = 19
)

// encodeModel appends the nine profile constants in declaration order.
func encodeModel(e *rpc.Encoder, m *offload.ModelParams) {
	for _, v := range m.Mu {
		e.Float64(v)
	}
	for _, v := range m.D {
		e.Float64(v)
	}
	for _, v := range m.Sigma {
		e.Float64(v)
	}
}

func decodeModel(d *rpc.Decoder, m *offload.ModelParams) {
	for i := range m.Mu {
		m.Mu[i] = d.Float64()
	}
	for i := range m.D {
		m.D[i] = d.Float64()
	}
	for i := range m.Sigma {
		m.Sigma[i] = d.Float64()
	}
}

// registerCodecs installs the binary codec for every protocol message.
// Idempotent, like RegisterMessages that calls it.
func registerCodecs() {
	rpc.RegisterCodec(codecIDRegisterReq, RegisterReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(RegisterReq)
			e.String(r.DeviceID)
			e.Float64(r.FLOPS)
			e.Float64(r.ArrivalMean)
			encodeModel(e, &r.Model)
		},
		func(d *rpc.Decoder) (any, error) {
			var r RegisterReq
			r.DeviceID = d.String()
			r.FLOPS = d.Float64()
			r.ArrivalMean = d.Float64()
			decodeModel(d, &r.Model)
			return r, nil
		})
	rpc.RegisterCodec(codecIDRegisterResp, RegisterResp{},
		func(e *rpc.Encoder, v any) {
			e.Float64(v.(RegisterResp).ShareFLOPS)
		},
		func(d *rpc.Decoder) (any, error) {
			return RegisterResp{ShareFLOPS: d.Float64()}, nil
		})
	rpc.RegisterCodec(codecIDFirstBlockReq, FirstBlockReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(FirstBlockReq)
			e.String(r.DeviceID)
			e.Uvarint(r.TaskID)
			e.Bytes(r.Payload)
			e.Int(r.ExitStage)
		},
		func(d *rpc.Decoder) (any, error) {
			var r FirstBlockReq
			r.DeviceID = d.String()
			r.TaskID = d.Uvarint()
			r.Payload = d.Bytes()
			r.ExitStage = d.Int()
			return r, nil
		})
	rpc.RegisterCodec(codecIDSecondBlockReq, SecondBlockReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(SecondBlockReq)
			e.String(r.DeviceID)
			e.Uvarint(r.TaskID)
			e.Bytes(r.Payload)
			e.Int(r.ExitStage)
		},
		func(d *rpc.Decoder) (any, error) {
			var r SecondBlockReq
			r.DeviceID = d.String()
			r.TaskID = d.Uvarint()
			r.Payload = d.Bytes()
			r.ExitStage = d.Int()
			return r, nil
		})
	rpc.RegisterCodec(codecIDThirdBlockReq, ThirdBlockReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(ThirdBlockReq)
			e.Uvarint(r.TaskID)
			e.Bytes(r.Payload)
			e.Float64(r.FLOPs)
		},
		func(d *rpc.Decoder) (any, error) {
			var r ThirdBlockReq
			r.TaskID = d.Uvarint()
			r.Payload = d.Bytes()
			r.FLOPs = d.Float64()
			return r, nil
		})
	rpc.RegisterCodec(codecIDTaskResp, TaskResp{},
		func(e *rpc.Encoder, v any) {
			r := v.(TaskResp)
			e.Uvarint(r.TaskID)
			e.Int(r.ExitStage)
		},
		func(d *rpc.Decoder) (any, error) {
			var r TaskResp
			r.TaskID = d.Uvarint()
			r.ExitStage = d.Int()
			return r, nil
		})
	rpc.RegisterCodec(codecIDQueueStatReq, QueueStatReq{},
		func(e *rpc.Encoder, v any) {
			e.String(v.(QueueStatReq).DeviceID)
		},
		func(d *rpc.Decoder) (any, error) {
			return QueueStatReq{DeviceID: d.String()}, nil
		})
	rpc.RegisterCodec(codecIDQueueStatResp, QueueStatResp{},
		func(e *rpc.Encoder, v any) {
			e.Int(v.(QueueStatResp).PendingFirstBlock)
		},
		func(d *rpc.Decoder) (any, error) {
			return QueueStatResp{PendingFirstBlock: d.Int()}, nil
		})
	rpc.RegisterCodec(codecIDUpdateReq, UpdateReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(UpdateReq)
			e.String(r.DeviceID)
			e.Float64(r.ArrivalMean)
		},
		func(d *rpc.Decoder) (any, error) {
			var r UpdateReq
			r.DeviceID = d.String()
			r.ArrivalMean = d.Float64()
			return r, nil
		})
	rpc.RegisterCodec(codecIDUnregisterReq, UnregisterReq{},
		func(e *rpc.Encoder, v any) {
			e.String(v.(UnregisterReq).DeviceID)
		},
		func(d *rpc.Decoder) (any, error) {
			return UnregisterReq{DeviceID: d.String()}, nil
		})
	rpc.RegisterCodec(codecIDUnregisterResp, UnregisterResp{},
		func(e *rpc.Encoder, v any) {
			e.Int(v.(UnregisterResp).RemainingTenants)
		},
		func(d *rpc.Decoder) (any, error) {
			return UnregisterResp{RemainingTenants: d.Int()}, nil
		})
	rpc.RegisterCodec(codecIDEdgeStatsReq, EdgeStatsReq{},
		func(e *rpc.Encoder, v any) {},
		func(d *rpc.Decoder) (any, error) {
			return EdgeStatsReq{}, nil
		})
	rpc.RegisterCodec(codecIDEdgeStatsResp, EdgeStatsResp{},
		func(e *rpc.Encoder, v any) {
			r := v.(EdgeStatsResp)
			e.Int(r.Tenants)
			e.Int(r.PendingFirstBlock)
			// Maps iterate in random order; sort the keys so encoding is
			// deterministic (differential tests compare byte streams).
			e.Uvarint(uint64(len(r.Shares)))
			keys := make([]string, 0, len(r.Shares))
			for k := range r.Shares {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.String(k)
				e.Float64(r.Shares[k])
			}
		},
		func(d *rpc.Decoder) (any, error) {
			var r EdgeStatsResp
			r.Tenants = d.Int()
			r.PendingFirstBlock = d.Int()
			n := d.Uvarint()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if n > uint64(d.Len()) {
				// Each entry needs at least one byte; a larger count is a
				// corrupt frame, not a huge allocation.
				return nil, fmt.Errorf("runtime: shares count %d exceeds frame", n)
			}
			if n > 0 {
				r.Shares = make(map[string]float64, n)
				for i := uint64(0); i < n; i++ {
					k := d.String()
					r.Shares[k] = d.Float64()
				}
			}
			return r, nil
		})
	rpc.RegisterCodec(codecIDHeartbeatReq, HeartbeatReq{},
		func(e *rpc.Encoder, v any) {
			e.String(v.(HeartbeatReq).DeviceID)
		},
		func(d *rpc.Decoder) (any, error) {
			return HeartbeatReq{DeviceID: d.String()}, nil
		})
	rpc.RegisterCodec(codecIDHeartbeatResp, HeartbeatResp{},
		func(e *rpc.Encoder, v any) {
			r := v.(HeartbeatResp)
			e.Bool(r.Ready)
			e.Float64(r.FLOPS)
			e.Int(r.Tenants)
			e.Float64(r.BacklogSec)
			e.Bool(r.Saturated)
			e.Int(r.PendingFirstBlock)
			e.Float64(r.ShareFLOPS)
		},
		func(d *rpc.Decoder) (any, error) {
			var r HeartbeatResp
			r.Ready = d.Bool()
			r.FLOPS = d.Float64()
			r.Tenants = d.Int()
			r.BacklogSec = d.Float64()
			r.Saturated = d.Bool()
			r.PendingFirstBlock = d.Int()
			r.ShareFLOPS = d.Float64()
			return r, nil
		})
	rpc.RegisterCodec(codecIDStealReq, StealReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(StealReq)
			e.String(r.DeviceID)
			e.Uvarint(r.TaskID)
			e.Bytes(r.Payload)
			e.Int(r.ExitStage)
			e.Int(r.Hop)
			encodeModel(e, &r.Model)
		},
		func(d *rpc.Decoder) (any, error) {
			var r StealReq
			r.DeviceID = d.String()
			r.TaskID = d.Uvarint()
			r.Payload = d.Bytes()
			r.ExitStage = d.Int()
			r.Hop = d.Int()
			decodeModel(d, &r.Model)
			return r, nil
		})
	rpc.RegisterCodec(codecIDStageInstallReq, StageInstallReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(StageInstallReq)
			e.String(r.PipelineID)
			e.Int(r.Stage)
			for _, f := range r.FLOPs {
				e.Float64(f)
			}
			for _, h := range r.Hosted {
				e.Bool(h)
			}
			e.Int(r.Deepest)
			e.Float64(r.OutBytes)
			e.String(r.NextAddr)
		},
		func(d *rpc.Decoder) (any, error) {
			var r StageInstallReq
			r.PipelineID = d.String()
			r.Stage = d.Int()
			for i := range r.FLOPs {
				r.FLOPs[i] = d.Float64()
			}
			for i := range r.Hosted {
				r.Hosted[i] = d.Bool()
			}
			r.Deepest = d.Int()
			r.OutBytes = d.Float64()
			r.NextAddr = d.String()
			return r, nil
		})
	rpc.RegisterCodec(codecIDStageInstallResp, StageInstallResp{},
		func(e *rpc.Encoder, v any) {
			e.Int(v.(StageInstallResp).Stage)
		},
		func(d *rpc.Decoder) (any, error) {
			return StageInstallResp{Stage: d.Int()}, nil
		})
	rpc.RegisterCodec(codecIDActivationReq, ActivationReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(ActivationReq)
			e.String(r.PipelineID)
			e.String(r.DeviceID)
			e.Uvarint(r.TaskID)
			e.Int(r.Stage)
			e.Int(r.ExitStage)
			e.Bytes(r.Payload)
		},
		func(d *rpc.Decoder) (any, error) {
			var r ActivationReq
			r.PipelineID = d.String()
			r.DeviceID = d.String()
			r.TaskID = d.Uvarint()
			r.Stage = d.Int()
			r.ExitStage = d.Int()
			r.Payload = d.Bytes()
			return r, nil
		})
}

// RegisterWireMetrics exposes the process-wide rpc codec counters on reg
// as scrape-time gauges, split by codec (binary fast path vs gob
// fallback) and direction. In steady state the gob frame gauges should
// sit at zero for the runtime protocol; movement there means a message
// type is missing its binary codec and the data plane is paying
// reflection costs. Safe to call more than once per registry.
func RegisterWireMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	frames := []struct {
		codec, dir string
		get        func(rpc.CodecStats) uint64
	}{
		{"binary", "encode", func(s rpc.CodecStats) uint64 { return s.BinaryEncoded }},
		{"binary", "decode", func(s rpc.CodecStats) uint64 { return s.BinaryDecoded }},
		{"gob", "encode", func(s rpc.CodecStats) uint64 { return s.GobEncoded }},
		{"gob", "decode", func(s rpc.CodecStats) uint64 { return s.GobDecoded }},
	}
	for _, f := range frames {
		get := f.get
		reg.GaugeFunc("leime_wire_frames", "Frames moved by the rpc wire codec.",
			func() float64 { return float64(get(rpc.WireStats())) },
			telemetry.Label{Key: "codec", Value: f.codec}, telemetry.Label{Key: "dir", Value: f.dir})
	}
	sizes := []struct {
		codec string
		get   func(rpc.CodecStats) uint64
	}{
		{"binary", func(s rpc.CodecStats) uint64 { return s.BinaryBytes }},
		{"gob", func(s rpc.CodecStats) uint64 { return s.GobBytes }},
	}
	for _, f := range sizes {
		get := f.get
		reg.GaugeFunc("leime_wire_encoded_bytes", "Envelope payload bytes produced by the rpc wire codec.",
			func() float64 { return float64(get(rpc.WireStats())) },
			telemetry.Label{Key: "codec", Value: f.codec})
	}
}
