package runtime

import (
	"sync/atomic"
	"testing"
)

// Executor benchmarks measure queue-machinery overhead, not burn time:
// zero-FLOPs jobs skip the sleep, so ns/op is enqueue + dispatch + wakeup.

// BenchmarkExecutorDo measures the single-submitter fast path.
func BenchmarkExecutorDo(b *testing.B) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Do(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorDoParallelSameClass measures contended submission where
// every goroutine shares one FLOPs class (one shard: the worst case for
// the sharded queue, equivalent to the old single mutex).
func BenchmarkExecutorDoParallelSameClass(b *testing.B) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := e.Do(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExecutorDoParallelMultiClass measures contended submission
// across four FLOPs classes — each goroutine sticks to one class, so
// enqueues spread over shards and contend only on their own lock.
func BenchmarkExecutorDoParallelMultiClass(b *testing.B) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	classes := [4]float64{1e-12, 2e-12, 3e-12, 4e-12} // distinct, burn rounds to 0
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		flops := classes[int(next.Add(1))%len(classes)]
		for pb.Next() {
			if err := e.Do(flops); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExecutorAdmissionReject measures the cost of a rejection: the
// overload path must be cheap precisely when the system is overloaded.
func BenchmarkExecutorAdmissionReject(b *testing.B) {
	e, err := NewExecutor(1, 1, WithPolicy(ControlPolicy{MaxBacklogSec: 0.001}))
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Do(1e9); err == nil {
			b.Fatal("expected rejection")
		}
	}
}
