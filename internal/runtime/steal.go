package runtime

import (
	"context"
	"fmt"
	"sync/atomic"

	"leime/internal/fleet"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// Edge federation: heartbeat serving, the peer registry, and the one-hop
// work-stealing path. A saturated edge (per-tenant pending cap hit or
// admission budget exhausted) forwards the rejected first-block task to the
// least-loaded ready peer, which executes the full remaining pipeline on
// its steal executor — spare capacity at the edge's full rate, outside the
// tenant KKT shares. The receiving edge never forwards again: StealReq
// handlers reject Hop != 1, so the one-hop bound is structural, not a
// convention.

// startPeers dials every configured peer and starts the heartbeat poller
// that tracks their health in a fleet registry.
func (e *Edge) startPeers() {
	e.peerClients = make(map[string]*rpc.ReliableClient, len(e.cfg.Peers))
	for _, addr := range e.cfg.Peers {
		e.peerClients[addr] = rpc.DialReliable(addr, nil, rpc.ReliableOptions{})
	}
	e.peers = fleet.New(e.cfg.Fleet, func(ctx context.Context, addr string) (fleet.Health, error) {
		c, ok := e.peerClients[addr]
		if !ok {
			return fleet.Health{}, fmt.Errorf("edge: unknown peer %q", addr)
		}
		got, err := c.Call(ctx, HeartbeatReq{})
		if err != nil {
			return fleet.Health{}, err
		}
		h, ok := got.(HeartbeatResp)
		if !ok {
			return fleet.Health{}, fmt.Errorf("edge: unexpected heartbeat reply %T", got)
		}
		return fleet.Health{Ready: h.Ready, FLOPS: h.FLOPS, Tenants: h.Tenants,
			BacklogSec: h.BacklogSec, Saturated: h.Saturated}, nil
	})
	for _, addr := range e.cfg.Peers {
		e.peers.Join(addr)
	}
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.GaugeFunc("leime_fleet_peers_ready", "Peer edges currently ready for stolen work.",
			func() float64 { return float64(len(e.peers.Ready())) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.stopPeers = cancel
	e.peerWG.Add(1)
	go func() {
		defer e.peerWG.Done()
		e.peers.Run(ctx)
	}()
}

// Ready reports whether the edge's KKT allocation is warm: it has at least
// one resident tenant with a solved share. The fleet readiness protocol
// keeps task traffic away from edges that are not (registration, a
// control-plane call, is what warms them).
func (e *Edge) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tenants) > 0
}

// PeerRegistry exposes the edge's view of its peers; nil when no peers are
// configured.
func (e *Edge) PeerRegistry() *fleet.Registry { return e.peers }

// StealStats snapshots the federation counters: tasks stolen in (executed
// for a peer), stolen out (placed on a peer), and failed steal attempts.
func (e *Edge) StealStats() (in, out, failed uint64) {
	return atomic.LoadUint64(&e.stealsIn), atomic.LoadUint64(&e.stealsOut), atomic.LoadUint64(&e.stealFailed)
}

// backlogSeconds sums queued work across every tenant executor and the
// steal executor, in seconds at their current rates.
func (e *Edge) backlogSeconds() float64 {
	e.mu.Lock()
	var sum float64
	for _, t := range e.tenants {
		sum += t.exec.BacklogSeconds()
	}
	e.mu.Unlock()
	return sum + e.stealExec.BacklogSeconds() + e.pipeExec.BacklogSeconds()
}

// healthResp builds the edge's heartbeat: fleet-wide health plus, when the
// caller identifies itself, its own tenancy view (backlog and share).
func (e *Edge) healthResp(deviceID string) HeartbeatResp {
	e.mu.Lock()
	resp := HeartbeatResp{
		Ready:   len(e.tenants) > 0,
		FLOPS:   e.cfg.FLOPS,
		Tenants: len(e.tenants),
	}
	var maxBacklog float64
	for _, t := range e.tenants {
		b := t.exec.BacklogSeconds()
		resp.BacklogSec += b
		if b > maxBacklog {
			maxBacklog = b
		}
	}
	if t, ok := e.tenants[deviceID]; ok {
		resp.PendingFirstBlock = int(atomic.LoadInt32(&t.h1))
		resp.ShareFLOPS = t.share * e.cfg.FLOPS
	}
	e.mu.Unlock()
	resp.BacklogSec += e.stealExec.BacklogSeconds()
	resp.Saturated = e.policy.MaxBacklogSec > 0 && maxBacklog >= e.policy.MaxBacklogSec
	return resp
}

// bestPeer picks the steal target: the ready, unsaturated peer with the
// least advertised backlog, ties broken by address order (the registry
// snapshot is sorted). Nil when no peer qualifies.
func (e *Edge) bestPeer() *rpc.ReliableClient {
	if e.peers == nil {
		return nil
	}
	bestAddr := ""
	bestBacklog := 0.0
	for _, m := range e.peers.Ready() {
		if m.Health.Saturated {
			continue
		}
		if bestAddr == "" || m.Health.BacklogSec < bestBacklog {
			bestAddr = m.Addr
			bestBacklog = m.Health.BacklogSec
		}
	}
	if bestAddr == "" {
		return nil
	}
	return e.peerClients[bestAddr]
}

// trySteal forwards an admission-rejected first-block task to the best
// peer. It reports false when no peer qualifies or the forward fails — the
// caller then returns the original rejection and the device falls back
// locally, exactly as without federation.
func (e *Edge) trySteal(ctx context.Context, meta rpc.Meta, req FirstBlockReq, model offload.ModelParams) (any, bool) {
	peer := e.bestPeer()
	if peer == nil {
		return nil, false
	}
	atomic.AddUint64(&e.stealsOut, 1)
	e.tel.stealsOut.Inc()
	var span *telemetry.Active
	if tctx := metaContext(meta); tctx.Valid() {
		span = e.tel.tracer.StartSpan(tctx, "rpc.steal").SetDevice(req.DeviceID).SetTask(req.TaskID)
	}
	got, err := peer.CallMeta(ctx, spanMeta(span), StealReq{
		DeviceID:  req.DeviceID,
		TaskID:    req.TaskID,
		Payload:   req.Payload,
		ExitStage: req.ExitStage,
		Hop:       1,
		Model:     model,
	})
	if err != nil {
		span.SetNote("steal failed: " + err.Error()).End()
		atomic.AddUint64(&e.stealFailed, 1)
		e.tel.stealFailed.Inc()
		return nil, false
	}
	span.End()
	resp, ok := got.(TaskResp)
	if !ok {
		atomic.AddUint64(&e.stealFailed, 1)
		e.tel.stealFailed.Inc()
		return nil, false
	}
	return resp, true
}

// handleSteal executes a task forwarded by a saturated peer: block 1 on,
// on the steal executor, never forwarding again (the one-hop bound).
func (e *Edge) handleSteal(ctx context.Context, meta rpc.Meta, req StealReq) (any, error) {
	if req.Hop != 1 {
		return nil, fmt.Errorf("edge: steal hop %d violates the one-hop bound", req.Hop)
	}
	atomic.AddUint64(&e.stealsIn, 1)
	e.tel.stealsIn.Inc()
	model := req.Model
	if model.Validate() != nil {
		model = e.cfg.Model
	}
	wait, service, err := e.stealExec.DoTimedCtx(ctx, model.Mu[0])
	if err != nil {
		return nil, e.execErr(err)
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block1.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block1", req.DeviceID, req.TaskID, wait, service)
	if req.ExitStage <= 1 {
		return TaskResp{TaskID: req.TaskID, ExitStage: 1}, nil
	}
	wait, service, err = e.stealExec.DoTimedCtx(ctx, model.Mu[1])
	if err != nil {
		return nil, e.execErr(err)
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block2.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block2", req.DeviceID, req.TaskID, wait, service)
	if req.ExitStage <= 2 || e.cloud == nil {
		return TaskResp{TaskID: req.TaskID, ExitStage: 2}, nil
	}
	return e.forwardCloud(ctx, meta, model, req.DeviceID, req.TaskID)
}
