package runtime

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecutorShardedConcurrentStress hammers one executor from many
// tenants across several FLOPs classes with concurrent submission,
// cancellation, rate changes and stat reads, then closes it mid-flight.
// Run under -race this is the memory-safety proof of the sharded queue;
// the assertions check conservation: every job resolves exactly one way
// and the accounting drains to zero.
func TestExecutorShardedConcurrentStress(t *testing.T) {
	e, err := NewExecutor(1e9, 0.001, WithPolicy(ControlPolicy{
		MaxBacklogSec: 5,
		Batch:         BatchConfig{MaxSize: 4, MaxDelaySec: 0.002},
	}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	classes := []float64{1e7, 2e7, 3e7, 4e7}
	const (
		workers    = 8
		jobsPerW   = 25
		cancelFrac = 4 // every 4th job is cancelled while queued
	)
	var completed, cancelled, rejected, closedErr atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < jobsPerW; i++ {
				flops := classes[rng.Intn(len(classes))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%cancelFrac == 0 {
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(200)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				_, _, err := e.DoTimedCtx(ctx, flops)
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, ErrExecutorClosed):
					closedErr.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(w)
	}
	// Concurrent control-plane traffic: rate changes and stat reads.
	stop := make(chan struct{})
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.SetRate(1e9 + float64(i%7)*1e8); err != nil {
				t.Errorf("SetRate: %v", err)
			}
			_ = e.Pending()
			_ = e.BacklogSeconds()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	ctlWG.Wait()
	e.Close()

	total := completed.Load() + cancelled.Load() + rejected.Load() + closedErr.Load()
	if total != workers*jobsPerW {
		t.Errorf("conservation: %d outcomes for %d jobs", total, workers*jobsPerW)
	}
	if completed.Load() == 0 {
		t.Error("no job completed")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending after drain = %d, want 0", got)
	}
	if got := e.BacklogSeconds(); got < -1e-9 || got > 1e-9 {
		t.Errorf("BacklogSeconds after drain = %v, want 0", got)
	}
}

// TestExecutorCloseDrainsAcceptedJobs pins the Close contract on the
// sharded queue: jobs accepted before Close complete normally (no error),
// jobs submitted after Close fail with ErrExecutorClosed, and Close does
// not return until the dispatcher drained everything.
func TestExecutorCloseDrainsAcceptedJobs(t *testing.T) {
	e, err := NewExecutor(1e9, 0.01)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	const queued = 6
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two classes, so the drain crosses shards.
			_, _, errs[i] = e.DoTimed(1e7 * float64(1+i%2))
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let them enqueue
	e.Close()
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending after Close = %d, want 0 (Close must drain)", got)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("queued job %d: %v (accepted work must complete)", i, err)
		}
	}
	if err := e.Do(1e7); !errors.Is(err, ErrExecutorClosed) {
		t.Errorf("Do after Close = %v, want ErrExecutorClosed", err)
	}
}

// TestExecutorShardFIFOPinsSingleQueueBehavior pins that the sharded
// dispatcher reproduces the old single-FIFO semantics exactly when
// batching is disabled: jobs of mixed classes run one at a time in
// submission order, and the wait/service split attributes time the same
// way (a job's wait is its predecessors' service).
func TestExecutorShardFIFOPinsSingleQueueBehavior(t *testing.T) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	// Mixed classes, submitted with deterministic spacing while the head
	// job occupies the server: completion order must equal submission
	// order even though the classes land in different shards.
	const perJob = 4e7 // 40ms at 1e9 FLOPS
	classes := []float64{perJob, 2 * perJob, perJob, 2 * perJob, perJob}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, flops := range classes {
		wg.Add(1)
		go func(i int, flops float64) {
			defer wg.Done()
			wait, service, err := e.DoTimed(flops)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			if i == 0 && wait > 30*time.Millisecond {
				t.Errorf("head job waited %v, want ~0", wait)
			}
			wantService := time.Duration(float64(time.Second) * flops / 1e9)
			if service < wantService || service > wantService+80*time.Millisecond {
				t.Errorf("job %d service = %v, want ≈%v", i, service, wantService)
			}
		}(i, flops)
		time.Sleep(8 * time.Millisecond) // deterministic enqueue order
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want submission order (sharding must not reorder the FIFO)", order)
		}
	}

	// Wait/service split: with the server busy on a 40ms head job, the
	// next job's wait is the head's residual service, not its own.
	var headWG sync.WaitGroup
	headWG.Add(1)
	go func() {
		defer headWG.Done()
		if _, _, err := e.DoTimed(perJob); err != nil {
			t.Errorf("head: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	wait, service, err := e.DoTimed(perJob)
	headWG.Wait()
	if err != nil {
		t.Fatalf("queued job: %v", err)
	}
	if wait < 10*time.Millisecond || wait > 100*time.Millisecond {
		t.Errorf("queued job wait = %v, want ≈30ms (head's residual service)", wait)
	}
	if service < 40*time.Millisecond || service > 120*time.Millisecond {
		t.Errorf("queued job service = %v, want ≈40ms", service)
	}
}

// TestExecutorShardBatchCoalescingPinned pins the batching side of the
// old behavior on the sharded queue: co-arriving same-class jobs coalesce
// into one amortized burn (identical published service), and a batch of
// one degenerates to the lone-job burn.
func TestExecutorShardBatchCoalescingPinned(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{Batch: BatchConfig{MaxSize: 4, MaxDelaySec: 0.05}}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	const perJob = 4e7 // 40ms lone burn
	var wg sync.WaitGroup
	services := make([]time.Duration, 4)
	for i := range services {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, service, err := e.DoTimed(perJob)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
			}
			services[i] = service
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(services); i++ {
		if services[i] != services[0] {
			t.Fatalf("batched services diverge: %v", services)
		}
	}
	// 4 jobs at marginal 0.25 burn 40ms*(1+3*0.25) = 70ms, far under the
	// 160ms serial cost; the shared service must reflect amortization.
	if services[0] >= 160*time.Millisecond {
		t.Errorf("batch service %v shows no amortization", services[0])
	}

	// A lone job after the batch burns its own 40ms.
	_, service, err := e.DoTimed(perJob)
	if err != nil {
		t.Fatalf("lone job: %v", err)
	}
	if service < 40*time.Millisecond || service > 120*time.Millisecond {
		t.Errorf("lone service = %v, want ≈40ms", service)
	}
}
