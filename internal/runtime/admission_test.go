package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"leime/internal/offload"
)

// TestExecutorAdmissionRejectsOverBudget floods a budgeted executor from
// many goroutines and checks the invariants of the rejection path: some
// work is refused with ErrOverloaded, accepted work all completes, and the
// backlog drains to zero. The concurrent submitters make this the -race
// exercise of the admission bookkeeping.
func TestExecutorAdmissionRejectsOverBudget(t *testing.T) {
	// Budget: 0.2s of work at 1e9 FLOPS = 2e8 FLOPs. Each job is 5e7
	// FLOPs (50ms), so at most 4 jobs fit the backlog at once.
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{MaxBacklogSec: 0.2}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	const submitters = 32
	var accepted, rejected atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch _, _, err := e.DoTimed(5e7); {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Error("no rejections despite 32 concurrent submitters against a 4-job budget")
	}
	if accepted.Load() == 0 {
		t.Error("everything rejected; admission must still accept work within budget")
	}
	if got := e.BacklogSeconds(); got != 0 {
		t.Errorf("backlog after drain = %v, want 0", got)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("pending after drain = %d, want 0", got)
	}
}

// TestExecutorAdmissionUnboundedByDefault checks the zero budget keeps the
// pre-admission-control behaviour: everything queues.
func TestExecutorAdmissionUnboundedByDefault(t *testing.T) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Do(1e6); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestEdgeBacklogBudgetTriggersLocalFallback drives an insistently
// offloading device against an edge whose tenant queues are bounded by the
// backlog budget. The rejections must surface device-side as fallbacks, not
// errors, and every task must still complete — the degrade-to-local
// contract of ErrOverloaded.
func TestEdgeBacklogBudgetTriggersLocalFallback(t *testing.T) {
	edge, err := StartEdge(EdgeConfig{
		Addr:  "127.0.0.1:0",
		FLOPS: 2e9, // slow edge: backlog actually builds
		Model: testModel(),
		// ~1 first-block task of budget at full share.
		Policy:    ControlPolicy{MaxBacklogSec: 0.15},
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	cfg := testDeviceConfig(edge.Addr(), "budgeted")
	eOnly := offload.EdgeOnly()
	cfg.Policy = &eOnly // insist on offloading so the budget must trip
	cfg.ArrivalMean = 8
	cfg.Slots = 25
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors despite degrade-to-local fallback", stats.Errors)
	}
	if stats.Completed != stats.Generated {
		t.Errorf("conservation: completed %d != generated %d", stats.Completed, stats.Generated)
	}
	if stats.Fallbacks == 0 {
		t.Error("backlog budget never tripped; test configuration too lenient")
	}
	if stats.Degraded != 0 {
		t.Errorf("overload misclassified as unreachability: %d degraded", stats.Degraded)
	}
}
