package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/fleet"
	"leime/internal/metrics"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
	"leime/internal/trace"
)

// DeviceConfig configures one end-device agent.
type DeviceConfig struct {
	// ID uniquely names the device at the edge.
	ID string
	// FLOPS is the device capability F_i^d.
	FLOPS float64
	// Model is the deployed ME-DNN.
	Model offload.ModelParams
	// EdgeAddr is the edge server address.
	EdgeAddr string
	// EdgeAddrs, when it lists more than one address, puts the device in
	// federation mode: it heartbeats every edge, folds their advertised
	// backlog and capacity into the Lyapunov drift term, and migrates its
	// tenancy to the edge minimizing drift-plus-penalty each decision epoch.
	// A single entry is equivalent to EdgeAddr. Supersedes EdgeAddr when set.
	EdgeAddrs []string
	// Fleet tunes the device's heartbeat poller over EdgeAddrs (zero value =
	// fleet defaults, except Every which defaults to one scaled slot).
	Fleet fleet.Config
	// SwitchMargin is the hysteresis for edge migration: the device leaves
	// its current edge only when the best alternative improves the selection
	// objective by more than this fraction. Zero means the 0.05 default.
	SwitchMargin float64
	// PipelineAddrs, when non-empty, puts the device in pipelined mode: it
	// installs Pipeline on the listed edge workers (stage j at address j),
	// sends every task into the first stage, and never consults the
	// offloading policy (the chain-cut solver decided placement offline, so
	// the per-slot decision is always offload). Supersedes EdgeAddr and
	// EdgeAddrs when set.
	PipelineAddrs []string
	// Pipeline is the stage specs to install, one per PipelineAddrs entry —
	// normally PipelineFromPlan of a partition solve.
	Pipeline []PipelineStage
	// PipelineID names the installed chain; empty defaults to the device ID
	// so concurrent devices do not clobber each other's stages.
	PipelineID string
	// Uplink shapes the device–edge path (the WiFi of the testbed).
	Uplink netem.Link
	// Arrivals yields per-slot task counts; nil defaults to Poisson with
	// ArrivalMean.
	Arrivals trace.Process
	// ArrivalMean is k_i, used for registration and the default process.
	ArrivalMean float64
	// Policy decides per-slot offloading; nil defaults to LEIME's Lyapunov
	// policy.
	Policy *offload.Policy
	// TauSec is the slot length (model seconds).
	TauSec float64
	// V is the Lyapunov penalty weight.
	V float64
	// Slots is the number of slots to generate.
	Slots int
	// WarmupSlots excludes early tasks from the statistics.
	WarmupSlots int
	// TimeScale compresses testbed time.
	TimeScale Scale
	// AdaptEvery, when positive, makes the device report an exponentially
	// weighted estimate of its observed arrival rate to the edge every
	// AdaptEvery slots; the edge re-solves the KKT allocation and the device
	// adopts the returned share (the runtime fine-tuning loop).
	AdaptEvery int
	// TaskDeadlineSec, when positive, is each task's time budget in model
	// seconds: the deadline travels with every rpc the task issues so the
	// edge and cloud shed work that can no longer finish in time, and a
	// task that misses it is counted in DeadlineMisses. Zero disables
	// deadlines.
	TaskDeadlineSec float64
	// Retry caps re-sends of idempotent control-plane requests after
	// transport failures (zero value = rpc defaults).
	Retry rpc.RetryPolicy
	// Breaker tunes the device's per-edge circuit breaker (zero value =
	// rpc defaults). While the breaker is not closed, offload decisions
	// are overridden to device-only.
	Breaker rpc.BreakerConfig
	// Seed drives arrival, exit and offloading randomness.
	Seed int64
	// Tracer records per-task lifecycle spans and propagates their context
	// to the edge and cloud through the rpc envelope; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics registers the device's counters and histograms; nil disables
	// them.
	Metrics *telemetry.Registry
	// Stop, when non-nil, aborts task generation at the next slot boundary
	// once the channel is closed; tasks already in flight drain before
	// RunDevice returns (the SIGINT/SIGTERM path of cmd/leime-device).
	Stop <-chan struct{}
	// Ready, when non-nil, is called once after the device has registered at
	// an edge and adopted its first share — the /readyz hook of
	// cmd/leime-device.
	Ready func()
}

// Validate reports whether the configuration is runnable.
func (c DeviceConfig) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("runtime: device needs an ID")
	}
	if c.FLOPS <= 0 {
		return fmt.Errorf("runtime: device FLOPS %v must be positive", c.FLOPS)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.EdgeAddr == "" && len(c.EdgeAddrs) == 0 && len(c.PipelineAddrs) == 0 {
		return fmt.Errorf("runtime: device needs an edge address")
	}
	if len(c.PipelineAddrs) > 0 && len(c.Pipeline) != len(c.PipelineAddrs) {
		return fmt.Errorf("runtime: %d pipeline stages for %d addresses", len(c.Pipeline), len(c.PipelineAddrs))
	}
	if err := c.Uplink.Validate(); err != nil {
		return err
	}
	if c.TauSec <= 0 || c.V <= 0 {
		return fmt.Errorf("runtime: TauSec (%v) and V (%v) must be positive", c.TauSec, c.V)
	}
	if c.Slots <= 0 || c.WarmupSlots < 0 || c.WarmupSlots >= c.Slots {
		return fmt.Errorf("runtime: bad horizon (slots=%d, warmup=%d)", c.Slots, c.WarmupSlots)
	}
	if c.TaskDeadlineSec < 0 {
		return fmt.Errorf("runtime: task deadline %v must be non-negative", c.TaskDeadlineSec)
	}
	return nil
}

// DeviceStats is the outcome of one device run.
type DeviceStats struct {
	// TCT summarizes post-warmup end-to-end completion times, in model
	// seconds (wall time divided by the time scale).
	TCT metrics.Summary
	// Ratio is the per-slot offloading decision.
	Ratio metrics.Series
	// ExitCounts tallies completions by exit stage.
	ExitCounts [3]int
	// LocalStage summarizes per-task time spent on the device CPU (queueing
	// plus first-block service), in model seconds; zero entries for fully
	// offloaded tasks are included.
	LocalStage metrics.Summary
	// RemoteStage summarizes per-task time spent beyond the device (uplink,
	// edge queueing/compute, cloud), in model seconds.
	RemoteStage metrics.Summary
	// Generated and Completed count tasks.
	Generated, Completed int
	// Errors counts tasks that failed; zero in healthy runs. Deadline
	// misses are included here and broken out in DeadlineMisses.
	Errors int
	// Fallbacks counts offloaded tasks the edge rejected with backpressure
	// that were re-run locally instead.
	Fallbacks int
	// Degraded counts tasks completed entirely on the device because the
	// edge was unreachable or the circuit breaker was open — the
	// graceful-degradation path.
	Degraded int
	// DeadlineMisses counts tasks that ran out of their TaskDeadlineSec
	// budget.
	DeadlineMisses int
	// Retries counts rpc retry attempts issued by the reliability layer.
	Retries int
	// BreakerOpens counts circuit-breaker open transitions during the run.
	BreakerOpens int
	// Migrations counts edge re-selections in federation mode: each one is a
	// tenancy move (register at the new edge, unregister at the old).
	Migrations int
}

// RunDevice executes the full device lifecycle: register at the edge,
// generate tasks slot by slot, decide offloading online, execute and collect
// completion statistics. It returns when every generated task finishes.
//
// The device is fault-tolerant: the edge connection re-dials and
// re-registers after a loss, idempotent control requests are retried with
// backoff, and a circuit breaker trips after consecutive transport failures
// — while it is not closed, offload decisions are overridden to device-only
// and every task runs its blocks locally (counted in DeviceStats.Degraded).
func RunDevice(cfg DeviceConfig) (*DeviceStats, error) {
	// A one-element edge list is plain single-edge operation: no heartbeat
	// poller, no migration machinery, behaviour identical to EdgeAddr.
	if len(cfg.EdgeAddrs) == 1 {
		cfg.EdgeAddr, cfg.EdgeAddrs = cfg.EdgeAddrs[0], nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	RegisterMessages()

	arrivals := cfg.Arrivals
	if arrivals == nil {
		p, err := trace.NewPoisson(cfg.ArrivalMean, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		arrivals = p
	}
	policy := offload.Lyapunov()
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	ctrl, err := offload.NewController(offload.Config{Model: cfg.Model, TauSec: cfg.TauSec, V: cfg.V})
	if err != nil {
		return nil, err
	}
	local, err := NewExecutor(cfg.FLOPS, cfg.TimeScale)
	if err != nil {
		return nil, err
	}
	defer local.Close()

	dev := offload.Device{
		FLOPS:        cfg.FLOPS,
		BandwidthBps: cfg.Uplink.BandwidthBps,
		LatencySec:   cfg.Uplink.Latency.Seconds(),
		ArrivalMean:  cfg.ArrivalMean,
	}

	d := &deviceRun{
		cfg:   cfg,
		local: local,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x7a5)),
		tel:   newDeviceTelemetry(cfg.ID, cfg.Tracer, cfg.Metrics),
	}
	d.rateEstimate = cfg.ArrivalMean

	if len(cfg.PipelineAddrs) > 0 {
		// Pipelined mode: push the chain (stage installs are idempotent
		// upserts, so a re-run repairs a restarted worker) and dial the
		// first stage. No tenancy, no KKT share — the chain's capacity was
		// priced by the partition solver.
		installCtx, installCancel := context.WithTimeout(context.Background(), rpc.DialTimeout)
		err := InstallPipeline(installCtx, d.pipelineID(), cfg.PipelineAddrs, cfg.Pipeline)
		installCancel()
		if err != nil {
			return nil, err
		}
		pipe, err := DialPipeline(PipelineClientConfig{
			Addr:       cfg.PipelineAddrs[0],
			PipelineID: d.pipelineID(),
			DeviceID:   cfg.ID,
			InputBytes: cfg.Model.D[0],
			Uplink:     cfg.Uplink,
			TimeScale:  cfg.TimeScale,
			Seed:       cfg.Seed,
			Retry:      cfg.Retry,
			Breaker:    cfg.Breaker,
		})
		if err != nil {
			return nil, err
		}
		d.pipe = pipe
		defer pipe.Close()
	} else if len(cfg.EdgeAddrs) > 1 {
		me, err := startMultiEdge(d)
		if err != nil {
			return nil, err
		}
		d.multi = me
		defer me.close()
	} else {
		shaper, err := netem.NewShaper(scaleLink(cfg.Uplink, cfg.TimeScale), cfg.Seed^0xde)
		if err != nil {
			return nil, err
		}
		client := rpc.DialReliable(cfg.EdgeAddr, shaper, rpc.ReliableOptions{
			Retry:   cfg.Retry,
			Breaker: cfg.Breaker,
			// Re-establish the session on every (re)connection: a restarted
			// edge has no tenant state, so the device re-registers with its
			// live rate estimate and adopts the fresh share before any other
			// call proceeds. This keeps the Lyapunov inputs consistent across
			// reconnects — the new edge's backlog observation starts at zero,
			// matching its actual empty queues.
			OnConnect: func(ctx context.Context, c *rpc.Client) error {
				got, err := c.Call(ctx, RegisterReq{DeviceID: cfg.ID, FLOPS: cfg.FLOPS, ArrivalMean: d.rate(), Model: cfg.Model})
				if err != nil {
					return err
				}
				if resp, ok := got.(RegisterResp); ok && resp.ShareFLOPS > 0 {
					d.setShare(resp.ShareFLOPS)
				}
				return nil
			},
			OnRetry:         d.onRetry,
			OnBreakerChange: d.onBreakerChange,
			Seed:            cfg.Seed ^ 0x9e77,
		})
		d.clientP.Store(client)
		defer client.Close()

		// The first call both connects and registers (via OnConnect); an edge
		// that is down or rejects the registration fails the run up front,
		// exactly like the pre-fault-tolerance behaviour.
		regCtx, regCancel := context.WithTimeout(context.Background(), rpc.DialTimeout)
		_, err = client.Call(regCtx, QueueStatReq{DeviceID: cfg.ID})
		regCancel()
		if err != nil {
			return nil, fmt.Errorf("runtime: register: %w", err)
		}
	}
	if cfg.Ready != nil {
		cfg.Ready()
	}

	start := time.Now()
	var taskID uint64
slots:
	for t := 0; t < cfg.Slots; t++ {
		// Align to the slot boundary on the compressed clock, but give up
		// the wait (and the rest of the horizon) if asked to stop.
		boundary := start.Add(cfg.TimeScale.Seconds(float64(t) * cfg.TauSec))
		if wait := time.Until(boundary); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-cfg.Stop:
				timer.Stop()
				break slots
			}
		}
		select {
		case <-cfg.Stop:
			break slots
		default:
		}
		m := arrivals.Next()
		// Track the observed rate and periodically renegotiate the edge
		// share so the allocation follows the live workload.
		const ewma = 0.15
		d.setRate((1-ewma)*d.rate() + ewma*float64(m))
		if cfg.AdaptEvery > 0 && d.pipe == nil && t > 0 && t%cfg.AdaptEvery == 0 {
			ctx, cancel := d.controlCtx()
			if got, err := d.edgeClient().Call(ctx, UpdateReq{DeviceID: cfg.ID, ArrivalMean: d.rate()}); err == nil {
				if resp, ok := got.(RegisterResp); ok && resp.ShareFLOPS > 0 {
					d.setShare(resp.ShareFLOPS)
				}
			}
			cancel()
		}
		var x float64
		if d.pipe != nil {
			// The chain-cut solver decided placement offline: every task
			// enters the pipeline, so the per-slot decision is constant.
			x = 1
		} else if d.multi != nil {
			x = d.multi.step(ctrl, policy, dev, float64(m), float64(local.Pending()))
		} else {
			slot := offload.Slot{
				Arrivals:       float64(m),
				State:          offload.State{Q: float64(local.Pending()), H: float64(d.edgeBacklog())},
				EdgeShareFLOPS: d.share(),
			}
			x = policy.Decide(ctrl, dev, slot)
			if d.edgeClient().Breaker().State() != rpc.BreakerClosed {
				// The edge is suspect: override the decision to device-only
				// until the breaker's half-open probe (a control-plane call)
				// confirms recovery.
				x = 0
			}
		}
		d.tel.ratio.Set(x)
		d.tel.generated.Add(uint64(m))
		d.mu.Lock()
		d.stats.Ratio.Append(x)
		d.stats.Generated += m
		d.mu.Unlock()
		for j := 0; j < m; j++ {
			taskID++
			d.wg.Add(1)
			go d.runTask(taskID, t, d.rngExit(), d.rngCoin() < x)
		}
	}
	d.wg.Wait()
	d.mu.Lock()
	stats := d.stats
	d.mu.Unlock()
	return &stats, nil
}

// deviceRun is the mutable state of one device lifecycle.
type deviceRun struct {
	cfg       DeviceConfig
	clientP   atomic.Pointer[rpc.ReliableClient] // current edge; swapped on migration
	multi     *multiEdge                         // nil outside federation mode
	pipe      *PipelineClient                    // nil outside pipelined mode
	local     *Executor
	tel       deviceTelemetry
	shareBits uint64 // atomic float64 bits: current edge share (FLOPS)

	mu           sync.Mutex
	rateEstimate float64
	stats        DeviceStats
	rngMu        sync.Mutex
	rng          *rand.Rand
	wg           sync.WaitGroup
}

// pipelineID resolves the configured chain name, defaulting to the device
// ID so concurrently pipelined devices keep disjoint stage maps.
func (d *deviceRun) pipelineID() string {
	if d.cfg.PipelineID != "" {
		return d.cfg.PipelineID
	}
	return d.cfg.ID
}

// edgeClient is the client of the device's current edge; tasks and control
// calls read it at issue time, so a migration redirects subsequent calls
// without disturbing those in flight.
func (d *deviceRun) edgeClient() *rpc.ReliableClient {
	return d.clientP.Load()
}

// onRetry feeds the rpc reliability layer's retry events into stats; shared
// by every edge client the device dials.
func (d *deviceRun) onRetry() {
	d.tel.retries.Inc()
	d.mu.Lock()
	d.stats.Retries++
	d.mu.Unlock()
}

// onBreakerChange mirrors breaker transitions into telemetry; in federation
// mode all edges share the handler, so the state gauge reflects the most
// recent transition on any of them.
func (d *deviceRun) onBreakerChange(s rpc.BreakerState) {
	d.tel.breakerState.Set(float64(s))
	if s == rpc.BreakerOpen {
		d.tel.breakerOpens.Inc()
		d.mu.Lock()
		d.stats.BreakerOpens++
		d.mu.Unlock()
	}
}

func (d *deviceRun) share() float64 {
	return math.Float64frombits(atomic.LoadUint64(&d.shareBits))
}

func (d *deviceRun) setShare(f float64) {
	atomic.StoreUint64(&d.shareBits, math.Float64bits(f))
}

func (d *deviceRun) rate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rateEstimate
}

func (d *deviceRun) setRate(r float64) {
	d.mu.Lock()
	d.rateEstimate = r
	d.mu.Unlock()
}

// controlCtx bounds one control-plane exchange (queue stats, rate updates):
// generous on the compressed clock, but never hanging a slot forever on a
// dead edge.
func (d *deviceRun) controlCtx() (context.Context, context.CancelFunc) {
	timeout := d.cfg.TimeScale.Seconds(10 * d.cfg.TauSec)
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	return context.WithTimeout(context.Background(), timeout)
}

// taskCtx derives one task's context from its deadline budget; the returned
// cancel must run when the task finishes.
func (d *deviceRun) taskCtx() (context.Context, context.CancelFunc) {
	if d.cfg.TaskDeadlineSec <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithDeadline(context.Background(), time.Now().Add(d.cfg.TimeScale.Seconds(d.cfg.TaskDeadlineSec)))
}

// deviceTelemetry holds the device's cached metric handles; all nil
// (no-op) when DeviceConfig.Metrics is nil.
type deviceTelemetry struct {
	tracer       *telemetry.Tracer
	generated    *telemetry.Counter
	completed    [3]*telemetry.Counter // by exit stage
	errors       *telemetry.Counter
	fallbacks    *telemetry.Counter
	degraded     *telemetry.Counter
	deadlineMiss *telemetry.Counter
	retries      *telemetry.Counter
	breakerOpens *telemetry.Counter
	breakerState *telemetry.Gauge
	migrations   *telemetry.Counter
	curEdge      *telemetry.Gauge
	tct          *telemetry.Histogram
	ratio        *telemetry.Gauge
}

func newDeviceTelemetry(id string, tr *telemetry.Tracer, reg *telemetry.Registry) deviceTelemetry {
	dev := telemetry.Label{Key: "device", Value: id}
	t := deviceTelemetry{
		tracer:       tr,
		generated:    reg.Counter("leime_tasks_generated_total", "Tasks generated.", dev),
		errors:       reg.Counter("leime_task_errors_total", "Tasks failed with RPC errors.", dev),
		fallbacks:    reg.Counter("leime_task_fallbacks_total", "Offloads rejected by edge backpressure and re-run locally.", dev),
		degraded:     reg.Counter("leime_tasks_degraded_total", "Tasks completed device-only because the edge was unreachable.", dev),
		deadlineMiss: reg.Counter("leime_task_deadline_missed_total", "Tasks that ran out of their deadline budget.", dev),
		retries:      reg.Counter("leime_rpc_retries_total", "RPC retry attempts against the edge.", dev),
		breakerOpens: reg.Counter("leime_breaker_opens_total", "Circuit breaker open transitions.", dev),
		breakerState: reg.Gauge("leime_breaker_state", "Edge circuit breaker state (0 closed, 1 half-open, 2 open).", dev),
		migrations:   reg.Counter("leime_device_migrations_total", "Edge re-selections (tenancy moves) in federation mode.", dev),
		curEdge:      reg.Gauge("leime_device_edge", "Index of the device's current edge in its configured fleet.", dev),
		tct:          reg.Histogram("leime_tct_seconds", "End-to-end task completion time (model seconds).", nil, dev),
		ratio:        reg.Gauge("leime_offload_ratio", "Most recent slot's offloading decision.", dev),
	}
	for i := range t.completed {
		t.completed[i] = reg.Counter("leime_tasks_completed_total", "Tasks completed, by exit stage.",
			dev, telemetry.Label{Key: "exit", Value: string(rune('1' + i))})
	}
	return t
}

func (d *deviceRun) rngExit() int {
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	r := d.rng.Float64()
	switch {
	case r < d.cfg.Model.Sigma[0]:
		return 1
	case r < d.cfg.Model.Sigma[1]:
		return 2
	default:
		return 3
	}
}

func (d *deviceRun) rngCoin() float64 {
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return d.rng.Float64()
}

// edgeBacklog asks the edge how many of this device's first-block tasks are
// pending (the H_i observation of the controller). While the breaker is
// half-open this idempotent call doubles as the recovery probe; on any
// failure the observation degrades to zero, matching the device-only
// override that accompanies a non-closed breaker.
func (d *deviceRun) edgeBacklog() int {
	ctx, cancel := d.controlCtx()
	defer cancel()
	got, err := d.edgeClient().Call(ctx, QueueStatReq{DeviceID: d.cfg.ID})
	if err != nil {
		return 0
	}
	resp, ok := got.(QueueStatResp)
	if !ok {
		return 0
	}
	return resp.PendingFirstBlock
}

// degradable reports whether an edge call failed in a way the device can
// absorb by running the remaining blocks itself: the peer is unreachable,
// the circuit breaker is open, the link injected a fault, a restarted edge
// lost this device's tenant state, or the edge answered mid-shutdown with
// its executors already draining.
func degradable(err error) bool {
	return errors.Is(err, rpc.ErrPeerUnavailable) || errors.Is(err, rpc.ErrCircuitOpen) ||
		errors.Is(err, rpc.ErrClosed) || errors.Is(err, netem.ErrInjected) ||
		errors.Is(err, ErrUnknownDevice) || errors.Is(err, ErrExecutorClosed)
}

// backpressured reports whether the edge refused work because it is
// saturated — the per-tenant pending cap (ErrBusy) or the backlog-budget
// admission control (ErrOverloaded). Both are degrade-to-local signals: the
// work never started, so the device re-runs the blocks itself rather than
// retrying against an overloaded server. ErrDeadlineInfeasible also unwraps
// to ErrOverloaded, so callers that shed deadline-doomed tasks instead of
// falling back must test for it BEFORE consulting this classifier.
func backpressured(err error) bool {
	return errors.Is(err, ErrBusy) || errors.Is(err, ErrOverloaded)
}

// runTask executes one task end-to-end and records its completion time.
func (d *deviceRun) runTask(id uint64, slot, exitStage int, offloaded bool) {
	defer d.wg.Done()
	began := time.Now()
	ctx, cancel := d.taskCtx()
	defer cancel()

	// The root span covers the whole task; the zero-length decision span
	// marks where the Lyapunov policy routed it.
	root := d.tel.tracer.StartSpan(telemetry.SpanContext{}, "task").SetDevice(d.cfg.ID).SetTask(id)
	decision := "local"
	if offloaded {
		decision = "offload"
	}
	d.tel.tracer.StartSpan(root.Context(), "device.decision").
		SetDevice(d.cfg.ID).SetTask(id).SetNote(decision).End()

	var err error
	var finalExit int
	var localDur time.Duration
	fellBack, degraded := false, false
	if offloaded {
		if d.pipe != nil {
			finalExit, err = d.pipelinedPath(ctx, root.Context(), id, exitStage)
		} else {
			finalExit, err = d.offloadedPath(ctx, root.Context(), id, exitStage)
		}
		switch {
		case err == nil:
		case errors.Is(err, ErrDeadlineInfeasible):
			// Deadline admission proved the task cannot finish in time even
			// if accepted; the device CPU is slower still, so re-running
			// locally would only burn cycles past the deadline. Shed now and
			// account it as a deadline miss, not a fallback.
			err = fmt.Errorf("runtime: edge shed the task: %w (%v)", rpc.ErrDeadlineExceeded, err)
		case backpressured(err) && d.pipe != nil:
			// The chain's entry stage applied backpressure; there is no
			// tenancy to continue under, so re-run every block locally.
			fellBack = true
			localDur, err = d.runLocalBlocks(ctx, root.Context(), id, 1, exitStage)
			if err == nil {
				finalExit = exitStage
			}
		case backpressured(err):
			// The edge applied backpressure (pending-task cap or admission
			// backlog budget): execute locally instead.
			fellBack = true
			var fb bool
			finalExit, localDur, fb, degraded, err = d.localPath(ctx, root.Context(), id, exitStage)
			fellBack = fellBack || fb
		case degradable(err) || errors.Is(err, ErrUnknownPipeline):
			// The edge (or chain entry stage) is unreachable: run every
			// block on the device.
			degraded = true
			localDur, err = d.runLocalBlocks(ctx, root.Context(), id, 1, exitStage)
			if err == nil {
				finalExit = exitStage
			}
		}
	} else {
		finalExit, localDur, fellBack, degraded, err = d.localPath(ctx, root.Context(), id, exitStage)
	}

	deadlineMissed := err != nil && errors.Is(err, rpc.ErrDeadlineExceeded)
	if fellBack {
		root.SetNote("fallback")
		d.tel.fallbacks.Inc()
	}
	if degraded {
		root.SetNote("degraded")
		d.tel.degraded.Inc()
	}
	if err != nil {
		root.SetNote("error: " + err.Error())
		d.tel.errors.Inc()
		if deadlineMissed {
			d.tel.deadlineMiss.Inc()
		}
	} else {
		d.tel.tracer.StartSpan(root.Context(), "exit").
			SetDevice(d.cfg.ID).SetTask(id).SetExit(finalExit).End()
		root.SetExit(finalExit)
		if finalExit >= 1 && finalExit <= 3 {
			d.tel.completed[finalExit-1].Inc()
		}
	}
	root.End()

	scale := float64(d.cfg.TimeScale)
	if scale <= 0 {
		scale = 1
	}
	elapsed := time.Since(began).Seconds() / scale
	if err == nil {
		d.tel.tct.Observe(elapsed)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		d.stats.Errors++
		if deadlineMissed {
			d.stats.DeadlineMisses++
		}
		d.stats.Completed++ // still accounted; latency excluded
		return
	}
	d.stats.Completed++
	d.stats.ExitCounts[finalExit-1]++
	if fellBack {
		d.stats.Fallbacks++
	}
	if degraded {
		d.stats.Degraded++
	}
	if slot >= d.cfg.WarmupSlots {
		local := localDur.Seconds() / scale
		d.stats.TCT.Add(elapsed)
		d.stats.LocalStage.Add(local)
		d.stats.RemoteStage.Add(elapsed - local)
	}
}

// runLocalBlocks burns blocks first..last on the device CPU — the degraded
// path when the edge cannot serve them. It returns the wall time spent.
func (d *deviceRun) runLocalBlocks(ctx context.Context, parent telemetry.SpanContext, id uint64, first, last int) (time.Duration, error) {
	start := time.Now()
	for b := first; b <= last && b <= len(d.cfg.Model.Mu); b++ {
		wait, service, err := d.local.DoTimedCtx(ctx, d.cfg.Model.Mu[b-1])
		if err != nil {
			return time.Since(start), localErr(err)
		}
		recordTimedSpans(d.tel.tracer, parent, "device.queue", fmt.Sprintf("device.block%d", b), d.cfg.ID, id, wait, service)
	}
	return time.Since(start), nil
}

// localErr maps an executor context failure to the rpc deadline sentinel so
// local and remote deadline misses classify identically.
func localErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("runtime: local execution: %w", rpc.ErrDeadlineExceeded)
	}
	return err
}

// localPath runs block 1 on the device CPU, then continues at the edge if
// the task survives the First exit. It returns the final exit, the time
// spent on the device (queueing plus service), whether the edge refused the
// continuation with backpressure (fellBack — the blocks re-ran locally),
// and whether it had to degrade to device-only execution because the edge
// became unreachable.
func (d *deviceRun) localPath(ctx context.Context, parent telemetry.SpanContext, id uint64, exitStage int) (finalExit int, localDur time.Duration, fellBack, degraded bool, err error) {
	start := time.Now()
	wait, service, err := d.local.DoTimedCtx(ctx, d.cfg.Model.Mu[0])
	if err != nil {
		return 0, 0, false, false, localErr(err)
	}
	recordTimedSpans(d.tel.tracer, parent, "device.queue", "device.block1", d.cfg.ID, id, wait, service)
	localDur = time.Since(start)
	if exitStage <= 1 {
		return 1, localDur, false, false, nil
	}
	payload := make([]byte, int(d.cfg.Model.D[1]))
	span := d.tel.tracer.StartSpan(parent, "rpc.second_block").SetDevice(d.cfg.ID).SetTask(id)
	got, err := d.edgeClient().CallMeta(ctx, spanMeta(span), SecondBlockReq{
		DeviceID:  d.cfg.ID,
		TaskID:    id,
		Payload:   payload,
		ExitStage: exitStage,
	})
	span.End()
	if err != nil {
		if errors.Is(err, ErrDeadlineInfeasible) {
			// Shed now: the continuation cannot meet the deadline at the
			// edge and certainly not on the device.
			return 0, 0, false, false, fmt.Errorf("runtime: edge shed the continuation: %w (%v)", rpc.ErrDeadlineExceeded, err)
		}
		if !degradable(err) && !backpressured(err) {
			return 0, 0, false, false, err
		}
		// The edge vanished mid-task or refused the continuation: finish
		// the remaining blocks locally. Backpressure counts as a fallback,
		// unreachability as degradation.
		fellBack = backpressured(err)
		degraded = !fellBack
		more, derr := d.runLocalBlocks(ctx, parent, id, 2, exitStage)
		if derr != nil {
			return 0, 0, fellBack, degraded, derr
		}
		return exitStage, localDur + more, fellBack, degraded, nil
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return 0, 0, false, false, fmt.Errorf("runtime: unexpected reply %T", got)
	}
	return resp.ExitStage, localDur, false, false, nil
}

// pipelinedPath sends the raw input into the chain's first stage; the
// stages relay the reply back, so one call covers every hop. The final
// exit may be shallower than asked when a mid-chain stage degraded the
// task after losing its next hop.
func (d *deviceRun) pipelinedPath(ctx context.Context, parent telemetry.SpanContext, id uint64, exitStage int) (int, error) {
	span := d.tel.tracer.StartSpan(parent, "rpc.pipeline").SetDevice(d.cfg.ID).SetTask(id)
	resp, err := d.pipe.DoMeta(ctx, spanMeta(span), id, exitStage)
	span.End()
	if err != nil {
		return 0, err
	}
	return resp.ExitStage, nil
}

// offloadedPath ships the raw input to the edge, which runs everything.
func (d *deviceRun) offloadedPath(ctx context.Context, parent telemetry.SpanContext, id uint64, exitStage int) (int, error) {
	payload := make([]byte, int(d.cfg.Model.D[0]))
	span := d.tel.tracer.StartSpan(parent, "rpc.first_block").SetDevice(d.cfg.ID).SetTask(id)
	got, err := d.edgeClient().CallMeta(ctx, spanMeta(span), FirstBlockReq{
		DeviceID:  d.cfg.ID,
		TaskID:    id,
		Payload:   payload,
		ExitStage: exitStage,
	})
	span.End()
	if err != nil {
		return 0, err
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return 0, fmt.Errorf("runtime: unexpected reply %T", got)
	}
	return resp.ExitStage, nil
}
