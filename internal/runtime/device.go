package runtime

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"leime/internal/metrics"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
	"leime/internal/trace"
)

// DeviceConfig configures one end-device agent.
type DeviceConfig struct {
	// ID uniquely names the device at the edge.
	ID string
	// FLOPS is the device capability F_i^d.
	FLOPS float64
	// Model is the deployed ME-DNN.
	Model offload.ModelParams
	// EdgeAddr is the edge server address.
	EdgeAddr string
	// Uplink shapes the device–edge path (the WiFi of the testbed).
	Uplink netem.Link
	// Arrivals yields per-slot task counts; nil defaults to Poisson with
	// ArrivalMean.
	Arrivals trace.Process
	// ArrivalMean is k_i, used for registration and the default process.
	ArrivalMean float64
	// Policy decides per-slot offloading; nil defaults to LEIME's Lyapunov
	// policy.
	Policy *offload.Policy
	// TauSec is the slot length (model seconds).
	TauSec float64
	// V is the Lyapunov penalty weight.
	V float64
	// Slots is the number of slots to generate.
	Slots int
	// WarmupSlots excludes early tasks from the statistics.
	WarmupSlots int
	// TimeScale compresses testbed time.
	TimeScale Scale
	// AdaptEvery, when positive, makes the device report an exponentially
	// weighted estimate of its observed arrival rate to the edge every
	// AdaptEvery slots; the edge re-solves the KKT allocation and the device
	// adopts the returned share (the runtime fine-tuning loop).
	AdaptEvery int
	// Seed drives arrival, exit and offloading randomness.
	Seed int64
	// Tracer records per-task lifecycle spans and propagates their context
	// to the edge and cloud through the rpc envelope; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics registers the device's counters and histograms; nil disables
	// them.
	Metrics *telemetry.Registry
	// Stop, when non-nil, aborts task generation at the next slot boundary
	// once the channel is closed; tasks already in flight drain before
	// RunDevice returns (the SIGINT/SIGTERM path of cmd/leime-device).
	Stop <-chan struct{}
}

// Validate reports whether the configuration is runnable.
func (c DeviceConfig) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("runtime: device needs an ID")
	}
	if c.FLOPS <= 0 {
		return fmt.Errorf("runtime: device FLOPS %v must be positive", c.FLOPS)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.EdgeAddr == "" {
		return fmt.Errorf("runtime: device needs an edge address")
	}
	if err := c.Uplink.Validate(); err != nil {
		return err
	}
	if c.TauSec <= 0 || c.V <= 0 {
		return fmt.Errorf("runtime: TauSec (%v) and V (%v) must be positive", c.TauSec, c.V)
	}
	if c.Slots <= 0 || c.WarmupSlots < 0 || c.WarmupSlots >= c.Slots {
		return fmt.Errorf("runtime: bad horizon (slots=%d, warmup=%d)", c.Slots, c.WarmupSlots)
	}
	return nil
}

// DeviceStats is the outcome of one device run.
type DeviceStats struct {
	// TCT summarizes post-warmup end-to-end completion times, in model
	// seconds (wall time divided by the time scale).
	TCT metrics.Summary
	// Ratio is the per-slot offloading decision.
	Ratio metrics.Series
	// ExitCounts tallies completions by exit stage.
	ExitCounts [3]int
	// LocalStage summarizes per-task time spent on the device CPU (queueing
	// plus first-block service), in model seconds; zero entries for fully
	// offloaded tasks are included.
	LocalStage metrics.Summary
	// RemoteStage summarizes per-task time spent beyond the device (uplink,
	// edge queueing/compute, cloud), in model seconds.
	RemoteStage metrics.Summary
	// Generated and Completed count tasks.
	Generated, Completed int
	// Errors counts tasks that failed (RPC errors); zero in healthy runs.
	Errors int
	// Fallbacks counts offloaded tasks the edge rejected with backpressure
	// that were re-run locally instead.
	Fallbacks int
}

// RunDevice executes the full device lifecycle: register at the edge,
// generate tasks slot by slot, decide offloading online, execute and collect
// completion statistics. It returns when every generated task finishes.
func RunDevice(cfg DeviceConfig) (*DeviceStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	RegisterMessages()

	shaper, err := netem.NewShaper(scaleLink(cfg.Uplink, cfg.TimeScale), cfg.Seed^0xde)
	if err != nil {
		return nil, err
	}
	client, err := rpc.Dial(cfg.EdgeAddr, shaper)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	got, err := client.Call(RegisterReq{DeviceID: cfg.ID, FLOPS: cfg.FLOPS, ArrivalMean: cfg.ArrivalMean, Model: cfg.Model})
	if err != nil {
		return nil, fmt.Errorf("runtime: register: %w", err)
	}
	reg, ok := got.(RegisterResp)
	if !ok {
		return nil, fmt.Errorf("runtime: unexpected register reply %T", got)
	}

	arrivals := cfg.Arrivals
	if arrivals == nil {
		p, err := trace.NewPoisson(cfg.ArrivalMean, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		arrivals = p
	}
	policy := offload.Lyapunov()
	if cfg.Policy != nil {
		policy = *cfg.Policy
	}
	ctrl, err := offload.NewController(offload.Config{Model: cfg.Model, TauSec: cfg.TauSec, V: cfg.V})
	if err != nil {
		return nil, err
	}
	local, err := NewExecutor(cfg.FLOPS, cfg.TimeScale)
	if err != nil {
		return nil, err
	}
	defer local.Close()

	dev := offload.Device{
		FLOPS:        cfg.FLOPS,
		BandwidthBps: cfg.Uplink.BandwidthBps,
		LatencySec:   cfg.Uplink.Latency.Seconds(),
		ArrivalMean:  cfg.ArrivalMean,
	}

	d := &deviceRun{
		cfg:    cfg,
		client: client,
		local:  local,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x7a5)),
		tel:    newDeviceTelemetry(cfg.ID, cfg.Tracer, cfg.Metrics),
	}

	start := time.Now()
	var taskID uint64
	rateEstimate := cfg.ArrivalMean
	shareFLOPS := reg.ShareFLOPS
slots:
	for t := 0; t < cfg.Slots; t++ {
		// Align to the slot boundary on the compressed clock, but give up
		// the wait (and the rest of the horizon) if asked to stop.
		boundary := start.Add(cfg.TimeScale.Seconds(float64(t) * cfg.TauSec))
		if wait := time.Until(boundary); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-cfg.Stop:
				timer.Stop()
				break slots
			}
		}
		select {
		case <-cfg.Stop:
			break slots
		default:
		}
		m := arrivals.Next()
		// Track the observed rate and periodically renegotiate the edge
		// share so the allocation follows the live workload.
		const ewma = 0.15
		rateEstimate = (1-ewma)*rateEstimate + ewma*float64(m)
		if cfg.AdaptEvery > 0 && t > 0 && t%cfg.AdaptEvery == 0 {
			if got, err := client.Call(UpdateReq{DeviceID: cfg.ID, ArrivalMean: rateEstimate}); err == nil {
				if resp, ok := got.(RegisterResp); ok && resp.ShareFLOPS > 0 {
					shareFLOPS = resp.ShareFLOPS
				}
			}
		}
		slot := offload.Slot{
			Arrivals:       float64(m),
			State:          offload.State{Q: float64(local.Pending()), H: float64(d.edgeBacklog())},
			EdgeShareFLOPS: shareFLOPS,
		}
		x := policy.Decide(ctrl, dev, slot)
		d.tel.ratio.Set(x)
		d.tel.generated.Add(uint64(m))
		d.mu.Lock()
		d.stats.Ratio.Append(x)
		d.stats.Generated += m
		d.mu.Unlock()
		for j := 0; j < m; j++ {
			taskID++
			d.wg.Add(1)
			go d.runTask(taskID, t, d.rngExit(), d.rngCoin() < x)
		}
	}
	d.wg.Wait()
	stats := d.stats
	return &stats, nil
}

// deviceRun is the mutable state of one device lifecycle.
type deviceRun struct {
	cfg    DeviceConfig
	client *rpc.Client
	local  *Executor
	tel    deviceTelemetry

	mu    sync.Mutex
	rngMu sync.Mutex
	rng   *rand.Rand
	stats DeviceStats
	wg    sync.WaitGroup
}

// deviceTelemetry holds the device's cached metric handles; all nil
// (no-op) when DeviceConfig.Metrics is nil.
type deviceTelemetry struct {
	tracer    *telemetry.Tracer
	generated *telemetry.Counter
	completed [3]*telemetry.Counter // by exit stage
	errors    *telemetry.Counter
	fallbacks *telemetry.Counter
	tct       *telemetry.Histogram
	ratio     *telemetry.Gauge
}

func newDeviceTelemetry(id string, tr *telemetry.Tracer, reg *telemetry.Registry) deviceTelemetry {
	dev := telemetry.Label{Key: "device", Value: id}
	t := deviceTelemetry{
		tracer:    tr,
		generated: reg.Counter("leime_tasks_generated_total", "Tasks generated.", dev),
		errors:    reg.Counter("leime_task_errors_total", "Tasks failed with RPC errors.", dev),
		fallbacks: reg.Counter("leime_task_fallbacks_total", "Offloads rejected by edge backpressure and re-run locally.", dev),
		tct:       reg.Histogram("leime_tct_seconds", "End-to-end task completion time (model seconds).", nil, dev),
		ratio:     reg.Gauge("leime_offload_ratio", "Most recent slot's offloading decision.", dev),
	}
	for i := range t.completed {
		t.completed[i] = reg.Counter("leime_tasks_completed_total", "Tasks completed, by exit stage.",
			dev, telemetry.Label{Key: "exit", Value: string(rune('1' + i))})
	}
	return t
}

func (d *deviceRun) rngExit() int {
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	r := d.rng.Float64()
	switch {
	case r < d.cfg.Model.Sigma[0]:
		return 1
	case r < d.cfg.Model.Sigma[1]:
		return 2
	default:
		return 3
	}
}

func (d *deviceRun) rngCoin() float64 {
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return d.rng.Float64()
}

// edgeBacklog asks the edge how many of this device's first-block tasks are
// pending (the H_i observation of the controller).
func (d *deviceRun) edgeBacklog() int {
	got, err := d.client.Call(QueueStatReq{DeviceID: d.cfg.ID})
	if err != nil {
		return 0
	}
	resp, ok := got.(QueueStatResp)
	if !ok {
		return 0
	}
	return resp.PendingFirstBlock
}

// runTask executes one task end-to-end and records its completion time.
func (d *deviceRun) runTask(id uint64, slot, exitStage int, offloaded bool) {
	defer d.wg.Done()
	began := time.Now()

	// The root span covers the whole task; the zero-length decision span
	// marks where the Lyapunov policy routed it.
	root := d.tel.tracer.StartSpan(telemetry.SpanContext{}, "task").SetDevice(d.cfg.ID).SetTask(id)
	decision := "local"
	if offloaded {
		decision = "offload"
	}
	d.tel.tracer.StartSpan(root.Context(), "device.decision").
		SetDevice(d.cfg.ID).SetTask(id).SetNote(decision).End()

	var err error
	var finalExit int
	var localDur time.Duration
	fellBack := false
	if offloaded {
		finalExit, err = d.offloadedPath(root.Context(), id, exitStage)
		if err != nil && strings.Contains(err.Error(), BusyMessage) {
			// The edge applied backpressure: execute locally instead.
			fellBack = true
			finalExit, localDur, err = d.localPath(root.Context(), id, exitStage)
		}
	} else {
		finalExit, localDur, err = d.localPath(root.Context(), id, exitStage)
	}

	if fellBack {
		root.SetNote("fallback")
		d.tel.fallbacks.Inc()
	}
	if err != nil {
		root.SetNote("error: " + err.Error())
		d.tel.errors.Inc()
	} else {
		d.tel.tracer.StartSpan(root.Context(), "exit").
			SetDevice(d.cfg.ID).SetTask(id).SetExit(finalExit).End()
		root.SetExit(finalExit)
		if finalExit >= 1 && finalExit <= 3 {
			d.tel.completed[finalExit-1].Inc()
		}
	}
	root.End()

	scale := float64(d.cfg.TimeScale)
	if scale <= 0 {
		scale = 1
	}
	elapsed := time.Since(began).Seconds() / scale
	if err == nil {
		d.tel.tct.Observe(elapsed)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil {
		d.stats.Errors++
		d.stats.Completed++ // still accounted; latency excluded
		return
	}
	d.stats.Completed++
	d.stats.ExitCounts[finalExit-1]++
	if fellBack {
		d.stats.Fallbacks++
	}
	if slot >= d.cfg.WarmupSlots {
		local := localDur.Seconds() / scale
		d.stats.TCT.Add(elapsed)
		d.stats.LocalStage.Add(local)
		d.stats.RemoteStage.Add(elapsed - local)
	}
}

// localPath runs block 1 on the device CPU, then continues at the edge if
// the task survives the First exit. It returns the final exit and the time
// spent on the device (queueing plus service).
func (d *deviceRun) localPath(parent telemetry.SpanContext, id uint64, exitStage int) (int, time.Duration, error) {
	start := time.Now()
	wait, service, err := d.local.DoTimed(d.cfg.Model.Mu[0])
	if err != nil {
		return 0, 0, err
	}
	recordTimedSpans(d.tel.tracer, parent, "device.queue", "device.block1", d.cfg.ID, id, wait, service)
	localDur := time.Since(start)
	if exitStage <= 1 {
		return 1, localDur, nil
	}
	payload := make([]byte, int(d.cfg.Model.D[1]))
	span := d.tel.tracer.StartSpan(parent, "rpc.second_block").SetDevice(d.cfg.ID).SetTask(id)
	got, err := d.client.CallMeta(spanMeta(span), SecondBlockReq{
		DeviceID:  d.cfg.ID,
		TaskID:    id,
		Payload:   payload,
		ExitStage: exitStage,
	})
	span.End()
	if err != nil {
		return 0, 0, err
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return 0, 0, fmt.Errorf("runtime: unexpected reply %T", got)
	}
	return resp.ExitStage, localDur, nil
}

// offloadedPath ships the raw input to the edge, which runs everything.
func (d *deviceRun) offloadedPath(parent telemetry.SpanContext, id uint64, exitStage int) (int, error) {
	payload := make([]byte, int(d.cfg.Model.D[0]))
	span := d.tel.tracer.StartSpan(parent, "rpc.first_block").SetDevice(d.cfg.ID).SetTask(id)
	got, err := d.client.CallMeta(spanMeta(span), FirstBlockReq{
		DeviceID:  d.cfg.ID,
		TaskID:    id,
		Payload:   payload,
		ExitStage: exitStage,
	})
	span.End()
	if err != nil {
		return 0, err
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return 0, fmt.Errorf("runtime: unexpected reply %T", got)
	}
	return resp.ExitStage, nil
}
