package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/control"
	"leime/internal/fleet"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// BusyMessage is the error text the edge returns when admission control
// rejects an offloaded task. Devices detect the condition with
// errors.Is(err, ErrBusy) and fall back to local execution.
const BusyMessage = "edge busy: first-block backlog limit reached"

// EdgeConfig configures the edge tier.
type EdgeConfig struct {
	// Addr is the listen address.
	Addr string
	// FLOPS is the edge capability F^e.
	FLOPS float64
	// MaxPendingPerTenant, when positive, caps each device's first-block
	// backlog: offloads beyond it are rejected with ErrBusy (admission
	// control / backpressure), and well-behaved devices fall back to local
	// execution instead of piling onto a saturated edge.
	MaxPendingPerTenant int
	// Policy is the control policy applied to every tenant executor (and
	// the steal slice): backlog budget, deadline admission, EDF ordering,
	// static or adaptive batching, and overload degradation. The backlog
	// budget is rate-relative, so the implied per-tenant capacity follows
	// the KKT share of the edge's FLOPS rating: a tenant with share p
	// admits about MaxBacklogSec * p * FLOPS / mu_b block-b jobs. The zero
	// value disables everything (unbounded FIFO queues, no batching, no
	// degradation).
	Policy ControlPolicy
	// Model is the deployed ME-DNN (block FLOPs, data sizes, exit rates).
	Model offload.ModelParams
	// CloudAddr is the cloud server to forward third-block work to; empty
	// disables the cloud tier (tasks then always exit by the Second exit).
	// The connection is established lazily and survives cloud restarts;
	// while the cloud is unreachable, exit-3 tasks degrade to the Second
	// exit instead of failing.
	CloudAddr string
	// CloudLink shapes the edge–cloud path (the Internet of the testbed).
	CloudLink netem.Link
	// CloudRetry caps re-sends of idempotent requests on the cloud path
	// (zero value = rpc defaults).
	CloudRetry rpc.RetryPolicy
	// CloudBreaker tunes the edge's per-cloud circuit breaker (zero value
	// = rpc defaults).
	CloudBreaker rpc.BreakerConfig
	// TimeScale compresses testbed time.
	TimeScale Scale
	// Peers lists sibling edge addresses in the federation. When set, the
	// edge heartbeats them through a fleet registry and forwards
	// admission-rejected first-block tasks to the least-loaded ready peer
	// (work stealing, bounded to one hop).
	Peers []string
	// Fleet tunes the peer registry's heartbeat cadence and suspicion
	// threshold; the zero value uses the fleet package defaults.
	Fleet fleet.Config
	// StealShare is the fraction of FLOPS the edge reserves for executing
	// stolen peer work, on top of the tenant allocation (default 0.1).
	// Stolen tasks must not ride the full edge rate: an overflow slice
	// keeps one steal hop from doubling the fleet's modeled compute.
	StealShare float64
	// PeerLink shapes the edge-to-edge path activations ride when this
	// edge hosts a pipeline stage and forwards to the next hop. The zero
	// value is an unshaped (instant) link, right for in-process tests.
	PeerLink netem.Link
	// Tracer records task-lifecycle spans for requests that arrive with a
	// trace context; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics registers the edge's counters, gauges and histograms; nil
	// disables them (handles degrade to no-ops).
	Metrics *telemetry.Registry
}

// Edge serves first- and second-block work with per-device resource shares
// (the Docker-quota equivalent), recomputing the KKT allocation whenever a
// device registers.
type Edge struct {
	cfg    EdgeConfig
	policy ControlPolicy // cfg.Policy with defaults resolved
	srv    *rpc.Server
	tel    edgeTelemetry

	mu      sync.Mutex
	tenants map[string]*tenant

	cloud *rpc.ReliableClient

	// Federation state: the peer registry and its clients exist only when
	// Peers is configured; the steal executor always does (it serves
	// StealReqs on the reserved StealShare overflow slice).
	stealExec   *Executor
	peers       *fleet.Registry
	peerClients map[string]*rpc.ReliableClient
	stopPeers   context.CancelFunc
	peerWG      sync.WaitGroup

	stealsIn, stealsOut, stealFailed uint64 // atomic

	// Pipeline state: installed stages by (pipeline id, stage index) and
	// the shared executor their activations burn compute on. The stage map
	// has its own lock — activations must not contend with the tenant
	// allocation path.
	pipeExec *Executor
	pipeMu   sync.Mutex
	pipes    map[string]map[int]*pipeStage
}

// edgeTelemetry holds the edge's cached metric handles; all of them are
// nil (no-op) when EdgeConfig.Metrics is nil.
type edgeTelemetry struct {
	tracer        *telemetry.Tracer
	reqFirst      *telemetry.Counter
	reqSecond     *telemetry.Counter
	reqQueue      *telemetry.Counter
	reqControl    *telemetry.Counter
	reqHeartbeat  *telemetry.Counter
	reqSteal      *telemetry.Counter
	reqStage      *telemetry.Counter
	reqActivation *telemetry.Counter
	pipeDegraded  *telemetry.Counter
	stealsOut     *telemetry.Counter
	stealsIn      *telemetry.Counter
	stealFailed   *telemetry.Counter
	busy          *telemetry.Counter
	overload      *telemetry.Counter
	sheds         *telemetry.Counter
	degradedExit  *telemetry.Counter
	cloudDegraded *telemetry.Counter
	cloudRetries  *telemetry.Counter
	cloudBreaker  *telemetry.Gauge
	tenants       *telemetry.Gauge
	queueWait     *telemetry.Histogram
	block1        *telemetry.Histogram
	block2        *telemetry.Histogram
	stage         *telemetry.Histogram
	cloudCall     *telemetry.Histogram
}

func newEdgeTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) edgeTelemetry {
	const reqHelp = "Requests served by the edge, by type."
	return edgeTelemetry{
		tracer:        tr,
		reqFirst:      reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "first_block"}),
		reqSecond:     reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "second_block"}),
		reqQueue:      reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "queue_stat"}),
		reqControl:    reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "control"}),
		reqHeartbeat:  reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "heartbeat"}),
		reqSteal:      reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "steal"}),
		reqStage:      reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "stage_install"}),
		reqActivation: reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "activation"}),
		pipeDegraded:  reg.Counter("leime_edge_pipeline_degraded_total", "Pipelined tasks answered from a shallower hosted exit because the next stage was unreachable."),
		stealsOut:     reg.Counter("leime_edge_steals_total", "Tasks moved by work stealing, by direction.", telemetry.Label{Key: "dir", Value: "out"}),
		stealsIn:      reg.Counter("leime_edge_steals_total", "Tasks moved by work stealing, by direction.", telemetry.Label{Key: "dir", Value: "in"}),
		stealFailed:   reg.Counter("leime_edge_steal_failures_total", "Steal attempts that failed (peer rejection or transport error)."),
		busy:          reg.Counter("leime_edge_busy_rejections_total", "Offloads rejected by the per-tenant pending-task cap."),
		overload:      reg.Counter("leime_edge_overload_rejections_total", "Requests rejected by the backlog-budget admission control."),
		sheds:         reg.Counter("leime_edge_deadline_shed_total", "Requests shed because their deadline passed (on arrival or while queued)."),
		degradedExit:  reg.Counter("leime_edge_exit_degraded_total", "Tasks served at a shallower exit by the degradation policy."),
		cloudDegraded: reg.Counter("leime_edge_cloud_degraded_total", "Exit-3 tasks degraded to the Second exit because the cloud was unreachable."),
		cloudRetries:  reg.Counter("leime_edge_cloud_retries_total", "RPC retry attempts against the cloud."),
		cloudBreaker:  reg.Gauge("leime_edge_cloud_breaker_state", "Cloud circuit breaker state (0 closed, 1 half-open, 2 open)."),
		tenants:       reg.Gauge("leime_edge_tenants", "Registered devices."),
		queueWait:     reg.Histogram("leime_edge_queue_wait_seconds", "First/second-block wait before service (wall seconds).", nil),
		block1:        reg.Histogram("leime_edge_block_seconds", "Block service time (wall seconds).", nil, telemetry.Label{Key: "block", Value: "1"}),
		block2:        reg.Histogram("leime_edge_block_seconds", "Block service time (wall seconds).", nil, telemetry.Label{Key: "block", Value: "2"}),
		stage:         reg.Histogram("leime_edge_stage_seconds", "Pipeline stage service time (wall seconds).", nil),
		cloudCall:     reg.Histogram("leime_edge_cloud_call_seconds", "Edge-cloud continuation round trip (wall seconds).", nil),
	}
}

// tenant is the edge-side state of one registered device.
type tenant struct {
	dev   offload.Device
	model offload.ModelParams
	exec  *Executor
	h1    int32 // atomic: pending first-block tasks
	// exitCap is the degradation plan's exit ceiling for this tenant
	// (atomic; 0 = no cap). Tasks requesting a deeper exit are served from
	// the cap's classifier instead.
	exitCap int32
	share   float64
}

// StartEdge launches the edge server. A configured cloud is dialed lazily:
// the edge starts (and serves two-exit work) even while the cloud is down.
func StartEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.FLOPS <= 0 {
		return nil, fmt.Errorf("runtime: edge FLOPS %v must be positive", cfg.FLOPS)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	RegisterMessages()
	e := &Edge{cfg: cfg, policy: cfg.Policy.withDefaults(), tenants: make(map[string]*tenant), pipes: make(map[string]map[int]*pipeStage), tel: newEdgeTelemetry(cfg.Tracer, cfg.Metrics)}
	// The steal executor serves forwarded peer work on the reserved
	// overflow slice under the same policy as the tenant executors: its
	// admission budget keeps a stolen flood from queueing unboundedly, and
	// deadline admission on the slice means a steal lands only where the
	// deadline is still feasible.
	stealShare := cfg.StealShare
	if stealShare <= 0 {
		stealShare = 0.1
	}
	stealExec, err := NewExecutor(stealShare*cfg.FLOPS, cfg.TimeScale, WithPolicy(e.policy))
	if err != nil {
		return nil, err
	}
	e.stealExec = stealExec
	// Pipeline stages ride one shared executor at the full edge rate under
	// the same control policy as every tenant: a pipelined task pays
	// backlog-budget and deadline admission at every stage it crosses, so a
	// chain consumes capacity like any other tenant traffic rather than
	// bypassing the control plane.
	pipeExec, err := NewExecutor(cfg.FLOPS, cfg.TimeScale, WithPolicy(e.policy))
	if err != nil {
		stealExec.Close()
		return nil, err
	}
	e.pipeExec = pipeExec
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("leime_edge_ready", "Whether the edge's KKT allocation is warm (1 = ready for task traffic).",
			func() float64 {
				if e.Ready() {
					return 1
				}
				return 0
			})
		cfg.Metrics.GaugeFunc("leime_edge_backlog_seconds", "Edge-wide queued work in seconds across all executors.",
			func() float64 { return e.backlogSeconds() })
	}
	if cfg.CloudAddr != "" {
		shaper, err := netem.NewShaper(scaleLink(cfg.CloudLink, cfg.TimeScale), 0x0edc)
		if err != nil {
			return nil, err
		}
		e.cloud = rpc.DialReliable(cfg.CloudAddr, shaper, rpc.ReliableOptions{
			Retry:   cfg.CloudRetry,
			Breaker: cfg.CloudBreaker,
			OnRetry: func() { e.tel.cloudRetries.Inc() },
			OnBreakerChange: func(s rpc.BreakerState) {
				e.tel.cloudBreaker.Set(float64(s))
			},
		})
	}
	srv, err := rpc.ServeMeta(cfg.Addr, e.handle, rpc.WithShedHook(func() { e.tel.sheds.Inc() }))
	if err != nil {
		if e.cloud != nil {
			_ = e.cloud.Close()
		}
		e.stealExec.Close()
		e.pipeExec.Close()
		return nil, err
	}
	e.srv = srv
	if len(cfg.Peers) > 0 {
		e.startPeers()
	}
	return e, nil
}

// scaleLink compresses a link's delays by the time scale: latency shrinks
// directly, bandwidth grows inversely so serialization time shrinks equally.
func scaleLink(l netem.Link, s Scale) netem.Link {
	if s <= 0 || s == 1 {
		return l
	}
	out := l
	if out.BandwidthBps > 0 {
		out.BandwidthBps /= float64(s)
	}
	out.Latency = s.D(out.Latency)
	out.Jitter = s.D(out.Jitter)
	return out
}

// Addr returns the edge's listen address.
func (e *Edge) Addr() string { return e.srv.Addr() }

// DeadlineSheds returns the number of requests the edge's server shed on
// arrival because their propagated deadline had already passed.
func (e *Edge) DeadlineSheds() uint64 { return e.srv.DeadlineSheds() }

func (e *Edge) handle(ctx context.Context, meta rpc.Meta, body any) (any, error) {
	switch req := body.(type) {
	case RegisterReq:
		e.tel.reqControl.Inc()
		return e.register(req)
	case FirstBlockReq:
		e.tel.reqFirst.Inc()
		return e.firstBlock(ctx, meta, req)
	case SecondBlockReq:
		e.tel.reqSecond.Inc()
		return e.secondBlock(ctx, meta, req)
	case QueueStatReq:
		e.tel.reqQueue.Inc()
		t, err := e.tenant(req.DeviceID)
		if err != nil {
			return nil, err
		}
		return QueueStatResp{PendingFirstBlock: int(atomic.LoadInt32(&t.h1))}, nil
	case UpdateReq:
		e.tel.reqControl.Inc()
		return e.update(req)
	case UnregisterReq:
		e.tel.reqControl.Inc()
		return e.unregister(req)
	case EdgeStatsReq:
		e.tel.reqControl.Inc()
		return e.stats(), nil
	case HeartbeatReq:
		e.tel.reqHeartbeat.Inc()
		return e.healthResp(req.DeviceID), nil
	case StealReq:
		e.tel.reqSteal.Inc()
		return e.handleSteal(ctx, meta, req)
	case StageInstallReq:
		e.tel.reqStage.Inc()
		return e.stageInstall(req)
	case ActivationReq:
		e.tel.reqActivation.Inc()
		return e.activation(ctx, meta, req)
	default:
		return nil, fmt.Errorf("edge: unexpected request %T", body)
	}
}

// update revises a tenant's expected arrival rate and rebalances all shares.
func (e *Edge) update(req UpdateReq) (any, error) {
	e.mu.Lock()
	t, ok := e.tenants[req.DeviceID]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownDevice, req.DeviceID)
	}
	deviceFLOPS := t.dev.FLOPS
	model := t.model
	e.mu.Unlock()
	return e.register(RegisterReq{DeviceID: req.DeviceID, FLOPS: deviceFLOPS, ArrivalMean: req.ArrivalMean, Model: model})
}

// tenantOrder snapshots tenant ids in sorted order alongside their device
// parameters. The KKT allocation's float arithmetic is order-sensitive, so
// handing it map-iteration order would make shares drift run to run; callers
// hold e.mu.
func (e *Edge) tenantOrder() ([]string, []offload.Device) {
	ids := make([]string, 0, len(e.tenants))
	for id := range e.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	devs := make([]offload.Device, len(ids))
	for i, id := range ids {
		devs[i] = e.tenants[id].dev
	}
	return ids, devs
}

// unregister removes a tenant and redistributes its edge share. The tenant's
// executor drains any accepted work and is then released; requests for the
// departed device fail with ErrUnknownDevice.
func (e *Edge) unregister(req UnregisterReq) (any, error) {
	e.mu.Lock()
	t, ok := e.tenants[req.DeviceID]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownDevice, req.DeviceID)
	}
	delete(e.tenants, req.DeviceID)
	remaining := len(e.tenants)
	e.tel.tenants.Set(float64(remaining))
	ids, devs := e.tenantOrder()
	var shares []float64
	var err error
	if remaining > 0 {
		shares, err = offload.Allocate(devs, e.cfg.FLOPS)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("edge: reallocation after departure: %w", err)
		}
		for i, id := range ids {
			tn := e.tenants[id]
			tn.share = shares[i]
			if err := tn.exec.SetRate(shares[i] * e.cfg.FLOPS); err != nil {
				e.mu.Unlock()
				return nil, err
			}
		}
	}
	e.recomputeCaps()
	e.mu.Unlock()
	t.exec.Close()
	return UnregisterResp{RemainingTenants: remaining}, nil
}

// stats snapshots the edge's tenancy state.
func (e *Edge) stats() EdgeStatsResp {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := EdgeStatsResp{
		Tenants: len(e.tenants),
		Shares:  make(map[string]float64, len(e.tenants)),
	}
	for id, t := range e.tenants {
		out.Shares[id] = t.share
		out.PendingFirstBlock += int(atomic.LoadInt32(&t.h1))
	}
	return out
}

// register admits a device and rebalances every tenant's edge share with the
// KKT allocation (eq. 27).
func (e *Edge) register(req RegisterReq) (any, error) {
	if req.DeviceID == "" {
		return nil, fmt.Errorf("edge: empty device id")
	}
	dev := offload.Device{
		FLOPS:        req.FLOPS,
		BandwidthBps: 1, // placeholder; allocation only uses FLOPS and k_i
		ArrivalMean:  req.ArrivalMean,
	}
	if req.FLOPS <= 0 {
		return nil, fmt.Errorf("edge: device %q FLOPS %v must be positive", req.DeviceID, req.FLOPS)
	}

	model := req.Model
	if model.Validate() != nil {
		// Zero or malformed model: serve this tenant with the edge default.
		model = e.cfg.Model
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	t, exists := e.tenants[req.DeviceID]
	if !exists {
		// Rate fixed below; the control policy (batching, admission, EDF)
		// comes from the edge configuration (no-ops when zero).
		exec, err := NewExecutor(e.cfg.FLOPS, e.cfg.TimeScale, WithPolicy(e.policy))
		if err != nil {
			return nil, err
		}
		t = &tenant{exec: exec}
		e.tenants[req.DeviceID] = t
		e.tel.tenants.Set(float64(len(e.tenants)))
	}
	t.dev = dev
	t.model = model

	ids, devs := e.tenantOrder()
	shares, err := offload.Allocate(devs, e.cfg.FLOPS)
	if err != nil {
		return nil, fmt.Errorf("edge: allocation: %w", err)
	}
	for i, id := range ids {
		tn := e.tenants[id]
		tn.share = shares[i]
		if err := tn.exec.SetRate(shares[i] * e.cfg.FLOPS); err != nil {
			return nil, err
		}
	}
	e.recomputeCaps()
	return RegisterResp{ShareFLOPS: t.share * e.cfg.FLOPS}, nil
}

// recomputeCaps re-plans per-tenant exit caps from the declared arrival
// rates and calibrated exit profiles whenever the tenancy or its rates
// change. The plan is a pure function of the sorted tenant state, so every
// edge computes the same caps for the same tenancy. Caller holds e.mu.
func (e *Edge) recomputeCaps() {
	if !e.policy.Degrade.Enabled {
		return
	}
	ids, _ := e.tenantOrder()
	// Declared arrival rates are wall-clock tasks per second while the FLOPS
	// budget is model-FLOPs per model second; under time compression one wall
	// second holds 1/TimeScale model seconds, so the wall rate shrinks by the
	// scale factor when expressed against the model-time budget.
	scale := float64(e.cfg.TimeScale)
	if scale <= 0 {
		scale = 1
	}
	demands := make([]control.TenantDemand, len(ids))
	for i, id := range ids {
		t := e.tenants[id]
		demands[i] = control.TenantDemand{
			ID:          id,
			ArrivalRate: t.dev.ArrivalMean * scale,
			BlockFLOPs:  t.model.Mu,
			Sigma:       t.model.Sigma,
		}
	}
	budgetFLOPS := e.policy.Degrade.Utilization * e.cfg.FLOPS
	var caps []int
	if e.policy.Degrade.Blind {
		caps = control.BlindPlan(demands, budgetFLOPS)
	} else {
		caps = control.Plan(demands, e.policy.Degrade.Accuracy, budgetFLOPS)
	}
	for i, id := range ids {
		atomic.StoreInt32(&e.tenants[id].exitCap, int32(caps[i]))
	}
}

// capExit applies the tenant's degradation cap to a requested exit stage,
// counting the degradation when it bites.
func (e *Edge) capExit(t *tenant, exitStage int) int {
	ceiling := int(atomic.LoadInt32(&t.exitCap))
	if ceiling > 0 && ceiling < exitStage {
		e.tel.degradedExit.Inc()
		return ceiling
	}
	return exitStage
}

func (e *Edge) tenant(id string) (*tenant, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownDevice, id)
	}
	return t, nil
}

// tenantSnapshot returns the tenant plus a copy of its deployed model taken
// under the lock: register/update rewrite t.model concurrently with task
// handlers, so handlers must work from the snapshot, never t.model.
func (e *Edge) tenantSnapshot(id string) (*tenant, offload.ModelParams, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[id]
	if !ok {
		return nil, offload.ModelParams{}, fmt.Errorf("%w %q", ErrUnknownDevice, id)
	}
	return t, t.model, nil
}

// execErr maps executor failures to their wire classification: a context
// expiry inside the queue becomes the rpc deadline sentinel (counted as a
// shed — the work was abandoned unburned because its propagated deadline
// passed while it waited), and an admission rejection stays ErrOverloaded
// with its counter bumped so saturation is visible in telemetry.
func (e *Edge) execErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		e.tel.sheds.Inc()
		return fmt.Errorf("edge: queued work shed: %w", rpc.ErrDeadlineExceeded)
	}
	if errors.Is(err, ErrOverloaded) {
		e.tel.overload.Inc()
		return fmt.Errorf("edge: admission: %w", err)
	}
	return err
}

// firstBlock runs block 1 (and onward) for an offloaded raw task, applying
// admission control on the tenant's backlog.
func (e *Edge) firstBlock(ctx context.Context, meta rpc.Meta, req FirstBlockReq) (any, error) {
	t, model, err := e.tenantSnapshot(req.DeviceID)
	if err != nil {
		return nil, err
	}
	if limit := e.cfg.MaxPendingPerTenant; limit > 0 && int(atomic.LoadInt32(&t.h1)) >= limit {
		if resp, ok := e.trySteal(ctx, meta, req, model); ok {
			return resp, nil
		}
		e.tel.busy.Inc()
		return nil, fmt.Errorf("%w (device %q, limit %d)", ErrBusy, req.DeviceID, limit)
	}
	atomic.AddInt32(&t.h1, 1)
	wait, service, err := t.exec.DoTimedCtx(ctx, model.Mu[0])
	atomic.AddInt32(&t.h1, -1)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			// The admission budget is exhausted: before bouncing the task
			// back to the device, try to place it on the least-loaded
			// ready peer (the work never started here, so forwarding is
			// safe).
			if resp, ok := e.trySteal(ctx, meta, req, model); ok {
				return resp, nil
			}
		}
		return nil, e.execErr(err)
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block1.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block1", req.DeviceID, req.TaskID, wait, service)
	// The degradation plan may cap this tenant's exits: a capped task is
	// answered by the cap's classifier (an accuracy sacrifice, never an
	// error), a cap of 2 skips the cloud forward, and a cap of 1 skips
	// block 2 entirely — the edge compute the plan reclaimed.
	effExit := e.capExit(t, req.ExitStage)
	if effExit <= 1 {
		return TaskResp{TaskID: req.TaskID, ExitStage: 1}, nil
	}
	return e.continueSecond(ctx, meta, t, model, req.DeviceID, req.TaskID, effExit)
}

// secondBlock runs block 2 for a task whose first block ran on the device.
// A tenant capped to exit 1 by the degradation plan is answered from the
// First exit the device already computed, skipping block 2.
func (e *Edge) secondBlock(ctx context.Context, meta rpc.Meta, req SecondBlockReq) (any, error) {
	t, model, err := e.tenantSnapshot(req.DeviceID)
	if err != nil {
		return nil, err
	}
	effExit := e.capExit(t, req.ExitStage)
	if effExit <= 1 {
		return TaskResp{TaskID: req.TaskID, ExitStage: 1}, nil
	}
	return e.continueSecond(ctx, meta, t, model, req.DeviceID, req.TaskID, effExit)
}

// continueSecond runs block 2 and, for exit-3 tasks, forwards to the cloud.
// When the cloud is unreachable (transport failure or open breaker), the
// task degrades to the Second exit instead of failing: an accuracy hit, not
// an availability hit — the multi-exit architecture's graceful-degradation
// dividend.
func (e *Edge) continueSecond(ctx context.Context, meta rpc.Meta, t *tenant, model offload.ModelParams, deviceID string, taskID uint64, exitStage int) (any, error) {
	wait, service, err := t.exec.DoTimedCtx(ctx, model.Mu[1])
	if err != nil {
		return nil, e.execErr(err)
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block2.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block2", deviceID, taskID, wait, service)
	if exitStage <= 2 || e.cloud == nil {
		return TaskResp{TaskID: taskID, ExitStage: 2}, nil
	}
	return e.forwardCloud(ctx, meta, model, deviceID, taskID)
}

// forwardCloud ships a post-Second-exit task to the cloud tier, degrading
// to the Second exit when the cloud is unreachable. Shared by the tenant
// path (continueSecond) and the steal path.
func (e *Edge) forwardCloud(ctx context.Context, meta rpc.Meta, model offload.ModelParams, deviceID string, taskID uint64) (any, error) {
	payload := make([]byte, int(model.D[2]))
	var cloudSpan *telemetry.Active
	if tctx := metaContext(meta); tctx.Valid() {
		cloudSpan = e.tel.tracer.StartSpan(tctx, "rpc.cloud").SetDevice(deviceID).SetTask(taskID)
	}
	start := time.Now()
	got, err := e.cloud.CallMeta(ctx, spanMeta(cloudSpan), ThirdBlockReq{TaskID: taskID, Payload: payload, FLOPs: model.Mu[2]})
	e.tel.cloudCall.Observe(time.Since(start).Seconds())
	if err != nil {
		if degradable(err) {
			cloudSpan.SetNote("degraded: " + err.Error()).End()
			e.tel.cloudDegraded.Inc()
			return TaskResp{TaskID: taskID, ExitStage: 2}, nil
		}
		cloudSpan.End()
		return nil, fmt.Errorf("edge: cloud continuation: %w", err)
	}
	cloudSpan.End()
	resp, ok := got.(TaskResp)
	if !ok {
		return nil, fmt.Errorf("edge: unexpected cloud reply %T", got)
	}
	return resp, nil
}

// CloudBreaker exposes the cloud path's circuit breaker; nil when no cloud
// is configured.
func (e *Edge) CloudBreaker() *rpc.Breaker {
	if e.cloud == nil {
		return nil
	}
	return e.cloud.Breaker()
}

// Close stops serving, releases tenant executors, the steal executor, the
// peer registry and the cloud client.
func (e *Edge) Close() error {
	err := e.srv.Close()
	if e.stopPeers != nil {
		e.stopPeers()
		e.peerWG.Wait()
	}
	e.mu.Lock()
	for _, t := range e.tenants {
		t.exec.Close()
	}
	e.mu.Unlock()
	e.stealExec.Close()
	e.pipeExec.Close()
	e.closePipelines()
	for _, c := range e.peerClients {
		_ = c.Close()
	}
	if e.cloud != nil {
		if cerr := e.cloud.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
