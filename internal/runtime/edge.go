package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// BusyMessage is the error text the edge returns when admission control
// rejects an offloaded task; devices detect it and fall back to local
// execution.
const BusyMessage = "edge busy: first-block backlog limit reached"

// EdgeConfig configures the edge tier.
type EdgeConfig struct {
	// Addr is the listen address.
	Addr string
	// FLOPS is the edge capability F^e.
	FLOPS float64
	// MaxPendingPerTenant, when positive, caps each device's first-block
	// backlog: offloads beyond it are rejected with BusyMessage (admission
	// control / backpressure), and well-behaved devices fall back to local
	// execution instead of piling onto a saturated edge.
	MaxPendingPerTenant int
	// Model is the deployed ME-DNN (block FLOPs, data sizes, exit rates).
	Model offload.ModelParams
	// CloudAddr is the cloud server to forward third-block work to; empty
	// disables the cloud tier (tasks then always exit by the Second exit).
	CloudAddr string
	// CloudLink shapes the edge–cloud path (the Internet of the testbed).
	CloudLink netem.Link
	// TimeScale compresses testbed time.
	TimeScale Scale
	// Tracer records task-lifecycle spans for requests that arrive with a
	// trace context; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics registers the edge's counters, gauges and histograms; nil
	// disables them (handles degrade to no-ops).
	Metrics *telemetry.Registry
}

// Edge serves first- and second-block work with per-device resource shares
// (the Docker-quota equivalent), recomputing the KKT allocation whenever a
// device registers.
type Edge struct {
	cfg EdgeConfig
	srv *rpc.Server
	tel edgeTelemetry

	mu      sync.Mutex
	tenants map[string]*tenant

	cloud *rpc.Client
}

// edgeTelemetry holds the edge's cached metric handles; all of them are
// nil (no-op) when EdgeConfig.Metrics is nil.
type edgeTelemetry struct {
	tracer     *telemetry.Tracer
	reqFirst   *telemetry.Counter
	reqSecond  *telemetry.Counter
	reqQueue   *telemetry.Counter
	reqControl *telemetry.Counter
	busy       *telemetry.Counter
	tenants    *telemetry.Gauge
	queueWait  *telemetry.Histogram
	block1     *telemetry.Histogram
	block2     *telemetry.Histogram
	cloudCall  *telemetry.Histogram
}

func newEdgeTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) edgeTelemetry {
	const reqHelp = "Requests served by the edge, by type."
	return edgeTelemetry{
		tracer:     tr,
		reqFirst:   reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "first_block"}),
		reqSecond:  reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "second_block"}),
		reqQueue:   reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "queue_stat"}),
		reqControl: reg.Counter("leime_edge_requests_total", reqHelp, telemetry.Label{Key: "type", Value: "control"}),
		busy:       reg.Counter("leime_edge_busy_rejections_total", "Offloads rejected by admission control."),
		tenants:    reg.Gauge("leime_edge_tenants", "Registered devices."),
		queueWait:  reg.Histogram("leime_edge_queue_wait_seconds", "First/second-block wait before service (wall seconds).", nil),
		block1:     reg.Histogram("leime_edge_block_seconds", "Block service time (wall seconds).", nil, telemetry.Label{Key: "block", Value: "1"}),
		block2:     reg.Histogram("leime_edge_block_seconds", "Block service time (wall seconds).", nil, telemetry.Label{Key: "block", Value: "2"}),
		cloudCall:  reg.Histogram("leime_edge_cloud_call_seconds", "Edge-cloud continuation round trip (wall seconds).", nil),
	}
}

// tenant is the edge-side state of one registered device.
type tenant struct {
	dev   offload.Device
	model offload.ModelParams
	exec  *Executor
	h1    int32 // atomic: pending first-block tasks
	share float64
}

// StartEdge launches the edge server.
func StartEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.FLOPS <= 0 {
		return nil, fmt.Errorf("runtime: edge FLOPS %v must be positive", cfg.FLOPS)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	RegisterMessages()
	e := &Edge{cfg: cfg, tenants: make(map[string]*tenant), tel: newEdgeTelemetry(cfg.Tracer, cfg.Metrics)}
	if cfg.CloudAddr != "" {
		shaper, err := netem.NewShaper(scaleLink(cfg.CloudLink, cfg.TimeScale), 0x0edc)
		if err != nil {
			return nil, err
		}
		cloud, err := rpc.Dial(cfg.CloudAddr, shaper)
		if err != nil {
			return nil, fmt.Errorf("runtime: edge cannot reach cloud: %w", err)
		}
		e.cloud = cloud
	}
	srv, err := rpc.ServeMeta(cfg.Addr, e.handle)
	if err != nil {
		if e.cloud != nil {
			_ = e.cloud.Close()
		}
		return nil, err
	}
	e.srv = srv
	return e, nil
}

// scaleLink compresses a link's delays by the time scale: latency shrinks
// directly, bandwidth grows inversely so serialization time shrinks equally.
func scaleLink(l netem.Link, s Scale) netem.Link {
	if s <= 0 || s == 1 {
		return l
	}
	out := l
	if out.BandwidthBps > 0 {
		out.BandwidthBps /= float64(s)
	}
	out.Latency = s.D(out.Latency)
	out.Jitter = s.D(out.Jitter)
	return out
}

// Addr returns the edge's listen address.
func (e *Edge) Addr() string { return e.srv.Addr() }

func (e *Edge) handle(meta rpc.Meta, body any) (any, error) {
	switch req := body.(type) {
	case RegisterReq:
		e.tel.reqControl.Inc()
		return e.register(req)
	case FirstBlockReq:
		e.tel.reqFirst.Inc()
		return e.firstBlock(meta, req)
	case SecondBlockReq:
		e.tel.reqSecond.Inc()
		return e.secondBlock(meta, req)
	case QueueStatReq:
		e.tel.reqQueue.Inc()
		t, err := e.tenant(req.DeviceID)
		if err != nil {
			return nil, err
		}
		return QueueStatResp{PendingFirstBlock: int(atomic.LoadInt32(&t.h1))}, nil
	case UpdateReq:
		e.tel.reqControl.Inc()
		return e.update(req)
	case UnregisterReq:
		e.tel.reqControl.Inc()
		return e.unregister(req)
	case EdgeStatsReq:
		e.tel.reqControl.Inc()
		return e.stats(), nil
	default:
		return nil, fmt.Errorf("edge: unexpected request %T", body)
	}
}

// update revises a tenant's expected arrival rate and rebalances all shares.
func (e *Edge) update(req UpdateReq) (any, error) {
	e.mu.Lock()
	t, ok := e.tenants[req.DeviceID]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("edge: unknown device %q", req.DeviceID)
	}
	flops := t.dev.FLOPS
	model := t.model
	e.mu.Unlock()
	return e.register(RegisterReq{DeviceID: req.DeviceID, FLOPS: flops, ArrivalMean: req.ArrivalMean, Model: model})
}

// unregister removes a tenant and redistributes its edge share. The tenant's
// executor drains any accepted work and is then released; requests for the
// departed device fail with "unknown device".
func (e *Edge) unregister(req UnregisterReq) (any, error) {
	e.mu.Lock()
	t, ok := e.tenants[req.DeviceID]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("edge: unknown device %q", req.DeviceID)
	}
	delete(e.tenants, req.DeviceID)
	remaining := len(e.tenants)
	e.tel.tenants.Set(float64(remaining))
	ids := make([]string, 0, remaining)
	devs := make([]offload.Device, 0, remaining)
	for id, tn := range e.tenants {
		ids = append(ids, id)
		devs = append(devs, tn.dev)
	}
	var shares []float64
	var err error
	if remaining > 0 {
		shares, err = offload.Allocate(devs, e.cfg.FLOPS)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("edge: reallocation after departure: %w", err)
		}
		for i, id := range ids {
			tn := e.tenants[id]
			tn.share = shares[i]
			if err := tn.exec.SetRate(shares[i] * e.cfg.FLOPS); err != nil {
				e.mu.Unlock()
				return nil, err
			}
		}
	}
	e.mu.Unlock()
	t.exec.Close()
	return UnregisterResp{RemainingTenants: remaining}, nil
}

// stats snapshots the edge's tenancy state.
func (e *Edge) stats() EdgeStatsResp {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := EdgeStatsResp{
		Tenants: len(e.tenants),
		Shares:  make(map[string]float64, len(e.tenants)),
	}
	for id, t := range e.tenants {
		out.Shares[id] = t.share
		out.PendingFirstBlock += int(atomic.LoadInt32(&t.h1))
	}
	return out
}

// register admits a device and rebalances every tenant's edge share with the
// KKT allocation (eq. 27).
func (e *Edge) register(req RegisterReq) (any, error) {
	if req.DeviceID == "" {
		return nil, fmt.Errorf("edge: empty device id")
	}
	dev := offload.Device{
		FLOPS:        req.FLOPS,
		BandwidthBps: 1, // placeholder; allocation only uses FLOPS and k_i
		ArrivalMean:  req.ArrivalMean,
	}
	if req.FLOPS <= 0 {
		return nil, fmt.Errorf("edge: device %q FLOPS %v must be positive", req.DeviceID, req.FLOPS)
	}

	model := req.Model
	if model.Validate() != nil {
		// Zero or malformed model: serve this tenant with the edge default.
		model = e.cfg.Model
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	t, exists := e.tenants[req.DeviceID]
	if !exists {
		exec, err := NewExecutor(e.cfg.FLOPS, e.cfg.TimeScale) // rate fixed below
		if err != nil {
			return nil, err
		}
		t = &tenant{exec: exec}
		e.tenants[req.DeviceID] = t
		e.tel.tenants.Set(float64(len(e.tenants)))
	}
	t.dev = dev
	t.model = model

	ids := make([]string, 0, len(e.tenants))
	devs := make([]offload.Device, 0, len(e.tenants))
	for id, tn := range e.tenants {
		ids = append(ids, id)
		devs = append(devs, tn.dev)
	}
	shares, err := offload.Allocate(devs, e.cfg.FLOPS)
	if err != nil {
		return nil, fmt.Errorf("edge: allocation: %w", err)
	}
	for i, id := range ids {
		tn := e.tenants[id]
		tn.share = shares[i]
		if err := tn.exec.SetRate(shares[i] * e.cfg.FLOPS); err != nil {
			return nil, err
		}
	}
	return RegisterResp{ShareFLOPS: t.share * e.cfg.FLOPS}, nil
}

func (e *Edge) tenant(id string) (*tenant, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[id]
	if !ok {
		return nil, fmt.Errorf("edge: unknown device %q", id)
	}
	return t, nil
}

// tenantSnapshot returns the tenant plus a copy of its deployed model taken
// under the lock: register/update rewrite t.model concurrently with task
// handlers, so handlers must work from the snapshot, never t.model.
func (e *Edge) tenantSnapshot(id string) (*tenant, offload.ModelParams, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[id]
	if !ok {
		return nil, offload.ModelParams{}, fmt.Errorf("edge: unknown device %q", id)
	}
	return t, t.model, nil
}

// firstBlock runs block 1 (and onward) for an offloaded raw task, applying
// admission control on the tenant's backlog.
func (e *Edge) firstBlock(meta rpc.Meta, req FirstBlockReq) (any, error) {
	t, model, err := e.tenantSnapshot(req.DeviceID)
	if err != nil {
		return nil, err
	}
	if limit := e.cfg.MaxPendingPerTenant; limit > 0 && int(atomic.LoadInt32(&t.h1)) >= limit {
		e.tel.busy.Inc()
		return nil, fmt.Errorf("%s (device %q, limit %d)", BusyMessage, req.DeviceID, limit)
	}
	atomic.AddInt32(&t.h1, 1)
	wait, service, err := t.exec.DoTimed(model.Mu[0])
	atomic.AddInt32(&t.h1, -1)
	if err != nil {
		return nil, err
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block1.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block1", req.DeviceID, req.TaskID, wait, service)
	if req.ExitStage <= 1 {
		return TaskResp{TaskID: req.TaskID, ExitStage: 1}, nil
	}
	return e.continueSecond(meta, t, model, req.DeviceID, req.TaskID, req.ExitStage)
}

// secondBlock runs block 2 for a task whose first block ran on the device.
func (e *Edge) secondBlock(meta rpc.Meta, req SecondBlockReq) (any, error) {
	t, model, err := e.tenantSnapshot(req.DeviceID)
	if err != nil {
		return nil, err
	}
	return e.continueSecond(meta, t, model, req.DeviceID, req.TaskID, req.ExitStage)
}

func (e *Edge) continueSecond(meta rpc.Meta, t *tenant, model offload.ModelParams, deviceID string, taskID uint64, exitStage int) (any, error) {
	wait, service, err := t.exec.DoTimed(model.Mu[1])
	if err != nil {
		return nil, err
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.block2.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", "edge.block2", deviceID, taskID, wait, service)
	if exitStage <= 2 || e.cloud == nil {
		return TaskResp{TaskID: taskID, ExitStage: 2}, nil
	}
	payload := make([]byte, int(model.D[2]))
	var cloudSpan *telemetry.Active
	if ctx := metaContext(meta); ctx.Valid() {
		cloudSpan = e.tel.tracer.StartSpan(ctx, "rpc.cloud").SetDevice(deviceID).SetTask(taskID)
	}
	start := time.Now()
	got, err := e.cloud.CallMeta(spanMeta(cloudSpan), ThirdBlockReq{TaskID: taskID, Payload: payload, FLOPs: model.Mu[2]})
	e.tel.cloudCall.Observe(time.Since(start).Seconds())
	cloudSpan.End()
	if err != nil {
		return nil, fmt.Errorf("edge: cloud continuation: %w", err)
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return nil, fmt.Errorf("edge: unexpected cloud reply %T", got)
	}
	return resp, nil
}

// Close stops serving, releases tenant executors and the cloud client.
func (e *Edge) Close() error {
	err := e.srv.Close()
	e.mu.Lock()
	for _, t := range e.tenants {
		t.exec.Close()
	}
	e.mu.Unlock()
	if e.cloud != nil {
		if cerr := e.cloud.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
