// Package runtime is the testbed of the reproduction: real device, edge and
// cloud agents talking over TCP with netem-shaped links, burning calibrated
// compute per DNN block, and running LEIME's online offloading controller on
// real queue observations. It mirrors the paper's prototype (Raspberry
// Pis/Jetson Nanos + i7 edge + V100 cloud, COMCAST shaping, Docker per-device
// quotas) with configured FLOPS ratings replacing owned hardware.
package runtime

import (
	"time"

	"leime/internal/offload"
	"leime/internal/rpc"
)

// Message types exchanged between tiers. Payloads carry real bytes so netem
// shaping sees authentic message sizes.

// RegisterReq announces a device to the edge server.
type RegisterReq struct {
	// DeviceID uniquely names the device.
	DeviceID string
	// FLOPS is the device capability (used by the KKT allocation).
	FLOPS float64
	// ArrivalMean is the device's expected tasks per slot (k_i).
	ArrivalMean float64
	// Model is the device's deployed ME-DNN. A zero value keeps the edge's
	// default model; a populated one lets heterogeneous applications share
	// one edge (each tenant's blocks are executed with its own FLOPs and
	// exit rates).
	Model offload.ModelParams
}

// RegisterResp acknowledges registration.
type RegisterResp struct {
	// ShareFLOPS is p_i * F^e: the edge compute reserved for the device.
	ShareFLOPS float64
}

// FirstBlockReq offloads a raw task to the edge: the edge runs block 1 and
// everything after it.
type FirstBlockReq struct {
	DeviceID string
	TaskID   uint64
	// Payload is the raw input (d_0 bytes).
	Payload []byte
	// ExitStage is the exit the task will leave through (1, 2 or 3),
	// determined by the confidence model from the sample's difficulty.
	ExitStage int
}

// SecondBlockReq continues a task whose first block ran on the device: the
// edge runs block 2 and, if needed, forwards to the cloud.
type SecondBlockReq struct {
	DeviceID string
	TaskID   uint64
	// Payload is the First-exit intermediate tensor (d_1 bytes).
	Payload []byte
	// ExitStage is the task's predetermined exit (2 or 3).
	ExitStage int
}

// ThirdBlockReq continues a task on the cloud after the Second exit.
type ThirdBlockReq struct {
	TaskID uint64
	// Payload is the Second-exit intermediate tensor (d_2 bytes).
	Payload []byte
	// FLOPs is the third block's operation count; zero uses the cloud's
	// default.
	FLOPs float64
}

// TaskResp reports a finished inference.
type TaskResp struct {
	TaskID uint64
	// ExitStage is where the task actually left the network.
	ExitStage int
}

// UpdateReq revises a device's expected arrival rate; the edge re-solves the
// KKT allocation and returns the device's new share. This is the runtime
// "fine-tuning" loop: devices report their observed load and the edge
// rebalances, responding to the transient mismatch between historical
// statistics and the live workload.
type UpdateReq struct {
	DeviceID string
	// ArrivalMean is the device's revised k_i estimate.
	ArrivalMean float64
}

// UnregisterReq removes a device; its edge share is redistributed to the
// remaining tenants.
type UnregisterReq struct {
	DeviceID string
}

// UnregisterResp acknowledges removal.
type UnregisterResp struct {
	// RemainingTenants is the number of devices still registered.
	RemainingTenants int
}

// EdgeStatsReq asks the edge for a snapshot of its tenancy state.
type EdgeStatsReq struct{}

// EdgeStatsResp is the edge's tenancy snapshot.
type EdgeStatsResp struct {
	// Tenants is the number of registered devices.
	Tenants int
	// PendingFirstBlock is the total first-block backlog across tenants.
	PendingFirstBlock int
	// Shares maps device IDs to their current edge share (fractions of F^e,
	// summing to 1).
	Shares map[string]float64
}

// HeartbeatReq asks an edge for its fleet health. Devices send it with
// their ID every decision epoch to feed edge selection; peer edges send it
// anonymously to track steal targets.
type HeartbeatReq struct {
	// DeviceID, when non-empty, asks for the sender's tenancy view
	// (pending backlog and current share) alongside the edge-wide health.
	DeviceID string
}

// HeartbeatResp is one edge's advertised health: the inputs to the fleet
// registry's readiness gating and to the device-side Lyapunov edge
// selection.
type HeartbeatResp struct {
	// Ready reports a warm KKT allocation (at least one resident tenant).
	Ready bool
	// FLOPS is the edge capability F^e.
	FLOPS float64
	// Tenants is the number of resident devices.
	Tenants int
	// BacklogSec is the edge-wide queued work in seconds across all
	// executors — the congestion penalty of the selection drift term.
	BacklogSec float64
	// Saturated reports a tenant executor at its admission budget;
	// saturated edges are skipped as steal targets.
	Saturated bool
	// PendingFirstBlock is the requesting device's first-block backlog
	// (H_{i,e}); zero when DeviceID was empty or unknown.
	PendingFirstBlock int
	// ShareFLOPS is the requesting device's current reserved compute;
	// zero when it is not a resident tenant.
	ShareFLOPS float64
}

// StealReq forwards an admission-rejected first-block task from a
// saturated edge to a ready peer. The receiving edge executes the full
// remaining pipeline (block 1 onward) on spare capacity and must never
// forward the task again — stealing is bounded to one hop by construction.
type StealReq struct {
	// DeviceID and TaskID identify the task for tracing; the device need
	// not be a tenant of the executing peer.
	DeviceID string
	TaskID   uint64
	// Payload is the raw input (d_0 bytes), carried so netem shaping sees
	// the true transfer size on the edge-peer path.
	Payload []byte
	// ExitStage is the task's predetermined exit (1, 2 or 3).
	ExitStage int
	// Hop counts forwarding hops; the origin edge sends 1 and peers
	// reject anything greater, making the one-hop bound structural.
	Hop int
	// Model carries the owning tenant's deployed ME-DNN so heterogeneous
	// tenants steal correctly; an invalid model falls back to the peer's
	// default.
	Model offload.ModelParams
}

// StageInstallReq installs (or replaces) one pipeline stage on an edge
// worker: the layer range's per-exit-class operation counts, which exit
// heads the range hosts, and where to forward survivors. Stages are
// addressed (PipelineID, Stage) and installation is an upsert, so a
// controller can re-push a chain after any worker restart.
type StageInstallReq struct {
	// PipelineID names the chain; one edge can host stages of many chains.
	PipelineID string
	// Stage is this worker's 0-based position in the chain.
	Stage int
	// FLOPs[c] is the operation count a task of exit class c+1 burns at
	// this stage (its backbone layers in the range plus every exit
	// classifier it passes there). Taken from partition.Stage.FLOPs.
	FLOPs [3]float64
	// Hosted[c] reports that exit class c+1 completes at this stage.
	Hosted [3]bool
	// Deepest is the deepest exit class (1..3) whose head lies at or
	// before this stage's end, or 0: the degraded answer when the next
	// hop is unreachable.
	Deepest int
	// OutBytes is the activation size forwarded to the next stage.
	OutBytes float64
	// NextAddr is the next stage's edge address; empty marks the terminal
	// stage.
	NextAddr string
}

// StageInstallResp acknowledges a stage installation.
type StageInstallResp struct {
	// Stage echoes the installed stage index.
	Stage int
}

// ActivationReq carries one task's intermediate activation into a pipeline
// stage: the stage burns its share of the task's compute and either
// answers from a hosted exit or forwards the next activation downstream.
// The payload carries real bytes so netem shaping prices the d_l transfer.
type ActivationReq struct {
	PipelineID string
	// DeviceID and TaskID identify the task for tracing and the reply.
	DeviceID string
	TaskID   uint64
	// Stage is the receiving worker's position; a mismatch with the
	// installed stage map is an unknown-pipeline error.
	Stage int
	// ExitStage is the task's predetermined exit class (1..3).
	ExitStage int
	// Payload is the activation tensor (d_Lo bytes for this stage).
	Payload []byte
}

// QueueStatReq asks the edge for the device's pending first-block backlog.
type QueueStatReq struct {
	DeviceID string
}

// QueueStatResp carries the backlog H_i observed at the edge.
type QueueStatResp struct {
	// PendingFirstBlock is the number of the device's first-block tasks
	// accepted but not yet finished at the edge.
	PendingFirstBlock int
}

// Idempotency markers for the rpc reliability layer: control-plane requests
// (registration, stat reads, rate updates) are safe to deliver twice, so a
// ReliableClient may retry them after a transport failure. Block executions
// (FirstBlockReq, SecondBlockReq, ThirdBlockReq) deliberately carry no
// marker — re-running a block would burn compute twice, so devices degrade
// those to local execution instead of retrying.

// Idempotent marks registration as safely repeatable (it upserts tenant
// state and re-solves the allocation either way).
func (RegisterReq) Idempotent() bool { return true }

// Idempotent marks backlog reads as safely repeatable.
func (QueueStatReq) Idempotent() bool { return true }

// Idempotent marks rate updates as safely repeatable (the edge keeps only
// the latest estimate).
func (UpdateReq) Idempotent() bool { return true }

// Idempotent marks removal as safely repeatable (removing a device twice
// fails the second time with ErrUnknownDevice, which callers treat as done).
func (UnregisterReq) Idempotent() bool { return true }

// Idempotent marks tenancy snapshots as safely repeatable.
func (EdgeStatsReq) Idempotent() bool { return true }

// Idempotent marks heartbeats as safely repeatable (pure reads).
func (HeartbeatReq) Idempotent() bool { return true }

// Idempotent marks stage installation as safely repeatable (it upserts the
// stage and re-dials the next hop either way). ActivationReq deliberately
// carries no marker: re-delivering an activation would burn stage compute
// twice, so upstream degrades to its deepest hosted exit instead of
// retrying.
func (StageInstallReq) Idempotent() bool { return true }

// RegisterMessages registers all protocol types with the rpc layer — the
// gob fallback registration here plus the binary codecs (codec.go) — so
// every tier rides the zero-allocation binary wire path for the closed
// protocol set. It is idempotent per process and must be called by every
// tier before serving or dialing.
func RegisterMessages() {
	registerCodecs()
	rpc.Register(RegisterReq{})
	rpc.Register(RegisterResp{})
	rpc.Register(FirstBlockReq{})
	rpc.Register(SecondBlockReq{})
	rpc.Register(ThirdBlockReq{})
	rpc.Register(TaskResp{})
	rpc.Register(QueueStatReq{})
	rpc.Register(QueueStatResp{})
	rpc.Register(UpdateReq{})
	rpc.Register(UnregisterReq{})
	rpc.Register(UnregisterResp{})
	rpc.Register(EdgeStatsReq{})
	rpc.Register(EdgeStatsResp{})
	rpc.Register(HeartbeatReq{})
	rpc.Register(HeartbeatResp{})
	rpc.Register(StealReq{})
	rpc.Register(StageInstallReq{})
	rpc.Register(StageInstallResp{})
	rpc.Register(ActivationReq{})
}

// Scale compresses testbed time so experiments finish quickly: all compute
// burns, link delays and slot lengths are multiplied by the factor. 1.0 is
// real time; 0.01 runs a 100-second experiment in one second. Latency
// ordering and ratios are preserved exactly.
type Scale float64

// D scales a duration.
func (s Scale) D(d time.Duration) time.Duration {
	if s <= 0 {
		return d
	}
	return time.Duration(float64(d) * float64(s))
}

// Seconds scales a duration expressed in seconds.
func (s Scale) Seconds(sec float64) time.Duration {
	return s.D(time.Duration(sec * float64(time.Second)))
}

// ModelSeconds converts a measured wall-clock duration back into model
// seconds, inverting Seconds; non-positive scales are identity (real
// time). Controllers compare observations in model seconds so the same
// policy values work at any time compression.
func (s Scale) ModelSeconds(d time.Duration) float64 {
	if s <= 0 {
		return d.Seconds()
	}
	return d.Seconds() / float64(s)
}
