package runtime

import "leime/internal/control"

// Defaults for the adaptive control policy. The batch constants are the
// static-optimal point found by the capacity experiment (4 devices on a
// 4 GFLOPS edge, seed 77): the adaptive window treats them as the ceiling
// it may approach, so a saturated adaptive executor converges to the same
// operating point a hand-tuned one starts at.
const (
	// DefaultAdaptiveBatchSize is the batch size cap when AdaptiveBatch is
	// set and ControlPolicy.Batch.MaxSize is zero.
	DefaultAdaptiveBatchSize = 8
	// DefaultAdaptiveDelayCapSec is the batch window ceiling (model
	// seconds) when AdaptiveBatch is set and Batch.MaxDelaySec is zero.
	DefaultAdaptiveDelayCapSec = 0.05
	// DefaultDegradeUtilization is the fraction of the edge's FLOPS the
	// degradation planner budgets tenants against when
	// DegradePolicy.Utilization is zero; the 10% headroom absorbs arrival
	// burstiness around the mean rates the plan is computed from.
	DefaultDegradeUtilization = 0.9
)

// DefaultExitAccuracy is the per-exit conditional accuracy profile assumed
// by the degradation planner when DegradePolicy.Accuracy is zero. The
// values are the calibrated resnet-34 profile on the standard workload;
// deployments serving other architectures should pass their own profile.
var DefaultExitAccuracy = [3]float64{0.80, 0.89, 0.94}

// ControlPolicy is the one knob surface of the edge control plane. It
// subsumes what used to be three independent settings (a static batch
// window, a static backlog budget, and hardwired exit degradation) and adds
// their closed-loop variants. The zero value disables every behaviour:
// unbounded FIFO queues, no batching, no degradation — exactly the
// pre-policy executor, preserved as a pinned degenerate case.
//
// Static configuration sets MaxBacklogSec and Batch directly; adaptive
// operation sets DeadlineAdmission / AdaptiveBatch / EDF / Degrade.Enabled
// and lets the controllers in internal/control drive the same mechanisms
// from observed load.
type ControlPolicy struct {
	// MaxBacklogSec bounds the executor queue: work that would push the
	// accepted-but-unfinished backlog beyond this many seconds (at the
	// current rate) is rejected with ErrOverloadCapacity. Non-positive
	// leaves the queue unbounded.
	MaxBacklogSec float64
	// DeadlineAdmission admits a task only if its predicted wait plus
	// service fits the deadline riding the wire in rpc.Meta: a task that
	// cannot finish in time is rejected with ErrDeadlineInfeasible at
	// admission instead of being queued, computed, and shed at its
	// deadline. The wait prediction is the executor backlog corrected by a
	// learned bias (control.Predictor).
	DeadlineAdmission bool
	// EDF orders each executor queue earliest-deadline-first instead of
	// FIFO; tasks without a deadline sort last, among themselves in arrival
	// order. With EDF false — or when no task carries a deadline — the
	// queue is the exact global FIFO the shard tests pin.
	EDF bool
	// Batch configures the batch window. With AdaptiveBatch false it is
	// applied statically, exactly the old behaviour; with AdaptiveBatch
	// true, MaxSize and MaxDelaySec become the ceilings of the adaptive
	// window (zeros select DefaultAdaptiveBatchSize /
	// DefaultAdaptiveDelayCapSec).
	Batch BatchConfig
	// AdaptiveBatch widens and shrinks the batch window from the observed
	// arrival rate and latency tail (control.Window): sparse traffic
	// serves unbatched with no added latency, saturation rides
	// Batch.MaxDelaySec.
	AdaptiveBatch bool
	// TargetP99Sec is the latency objective of the adaptive window in
	// model seconds: when observed p99 exceeds it the window backs off.
	// Zero disables the latency guard.
	TargetP99Sec float64
	// Degrade controls overload exit degradation at the edge.
	Degrade DegradePolicy
}

// DegradePolicy chooses how an overloaded edge trades accuracy for
// throughput by serving some tenants from shallower exits.
type DegradePolicy struct {
	// Enabled turns degradation on. With Blind false the edge runs the
	// accuracy-maximizing planner (control.Plan): tenants whose calibrated
	// exit profile loses the least accuracy per edge FLOPS freed are
	// demoted first, until offered demand fits Utilization of the edge's
	// FLOPS.
	Enabled bool
	// Blind reproduces the legacy strawman instead: under overload every
	// tenant is uniformly capped to exit 2. Kept as a comparison baseline
	// for the selftune experiment; it frees no edge compute.
	Blind bool
	// Accuracy is the per-exit conditional accuracy profile the planner
	// maximizes; the zero value selects DefaultExitAccuracy.
	Accuracy [3]float64
	// Utilization is the fraction of edge FLOPS the planner budgets
	// offered demand against, in (0, 1]; zero selects
	// DefaultDegradeUtilization.
	Utilization float64
}

// withDefaults resolves zero fields of a degrade policy to the documented
// defaults.
func (d DegradePolicy) withDefaults() DegradePolicy {
	if d.Utilization <= 0 || d.Utilization > 1 {
		d.Utilization = DefaultDegradeUtilization
	}
	if d.Accuracy == ([3]float64{}) {
		d.Accuracy = DefaultExitAccuracy
	}
	return d
}

// withDefaults resolves zero fields of a policy to the documented defaults:
// adaptive batching fills its size/window ceilings, degradation fills its
// accuracy profile and utilization. Fully zero stays fully zero — the
// degenerate no-op policy.
func (p ControlPolicy) withDefaults() ControlPolicy {
	if p.AdaptiveBatch {
		if p.Batch.MaxSize <= 1 {
			p.Batch.MaxSize = DefaultAdaptiveBatchSize
		}
		if p.Batch.MaxDelaySec <= 0 {
			p.Batch.MaxDelaySec = DefaultAdaptiveDelayCapSec
		}
	}
	p.Degrade = p.Degrade.withDefaults()
	return p
}

// WithPolicy applies a control policy to an executor: admission budget,
// queue order, batch window (static or adaptive) and deadline admission.
// It is the one way to configure executor behaviour; passing the zero
// policy is a no-op, so callers can plumb user configuration through
// unconditionally.
func WithPolicy(p ControlPolicy) ExecOption {
	return func(e *Executor) {
		p = p.withDefaults()
		e.policy = p
		e.batch = p.Batch
		e.admitSec = p.MaxBacklogSec
		e.edf = p.EDF
		if p.AdaptiveBatch {
			e.window = control.NewWindow(control.WindowConfig{
				MaxSize:      p.Batch.MaxSize,
				DelayCapSec:  p.Batch.MaxDelaySec,
				TargetP99Sec: p.TargetP99Sec,
			})
		}
		if p.DeadlineAdmission {
			e.pred = control.NewPredictor(0)
		}
	}
}
