package runtime

import (
	"context"
	"errors"
	"math"
	"testing"

	"leime/internal/rpc"
	"leime/internal/trace"
)

func TestEdgeUpdateRebalancesShares(t *testing.T) {
	_, edge := startTestbed(t)
	if _, err := edge.register(RegisterReq{DeviceID: "a", FLOPS: 1.2e9, ArrivalMean: 10}); err != nil {
		t.Fatalf("register a: %v", err)
	}
	if _, err := edge.register(RegisterReq{DeviceID: "b", FLOPS: 1.2e9, ArrivalMean: 10}); err != nil {
		t.Fatalf("register b: %v", err)
	}
	// Equal demand: equal shares.
	st := edge.stats()
	if math.Abs(st.Shares["a"]-0.5) > 0.01 {
		t.Fatalf("equal-demand share = %v, want ~0.5", st.Shares["a"])
	}
	// Device a reports a much higher rate: its share must grow.
	got, err := edge.update(UpdateReq{DeviceID: "a", ArrivalMean: 60})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	newShare := got.(RegisterResp).ShareFLOPS / 6e10
	if newShare <= 0.55 {
		t.Errorf("share after 6x demand increase = %v, want > 0.55", newShare)
	}
	st = edge.stats()
	if math.Abs(st.Shares["a"]+st.Shares["b"]-1) > 1e-9 {
		t.Errorf("shares no longer sum to 1: %v", st.Shares)
	}
}

func TestEdgeUpdateUnknownDevice(t *testing.T) {
	_, edge := startTestbed(t)
	if _, err := edge.update(UpdateReq{DeviceID: "ghost", ArrivalMean: 5}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("update for unknown device = %v, want ErrUnknownDevice", err)
	}
}

func TestEdgeUnregisterRedistributes(t *testing.T) {
	_, edge := startTestbed(t)
	for _, id := range []string{"a", "b", "c"} {
		if _, err := edge.register(RegisterReq{DeviceID: id, FLOPS: 1.2e9, ArrivalMean: 10}); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	got, err := edge.unregister(UnregisterReq{DeviceID: "b"})
	if err != nil {
		t.Fatalf("unregister: %v", err)
	}
	if got.(UnregisterResp).RemainingTenants != 2 {
		t.Errorf("remaining = %d, want 2", got.(UnregisterResp).RemainingTenants)
	}
	st := edge.stats()
	if st.Tenants != 2 {
		t.Fatalf("stats tenants = %d, want 2", st.Tenants)
	}
	var sum float64
	for id, share := range st.Shares {
		if id == "b" {
			t.Error("departed device still has a share")
		}
		sum += share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares after departure sum to %v", sum)
	}
	// Requests for the departed device must fail with the typed sentinel.
	if _, err := edge.handle(context.Background(), rpc.Meta{}, FirstBlockReq{DeviceID: "b", TaskID: 1, ExitStage: 1}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("task for departed device = %v, want ErrUnknownDevice", err)
	}
	// Double unregister must fail cleanly.
	if _, err := edge.unregister(UnregisterReq{DeviceID: "b"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("double unregister = %v, want ErrUnknownDevice", err)
	}
}

func TestEdgeUnregisterLastTenant(t *testing.T) {
	_, edge := startTestbed(t)
	if _, err := edge.register(RegisterReq{DeviceID: "only", FLOPS: 1e9, ArrivalMean: 3}); err != nil {
		t.Fatalf("register: %v", err)
	}
	got, err := edge.unregister(UnregisterReq{DeviceID: "only"})
	if err != nil {
		t.Fatalf("unregister last: %v", err)
	}
	if got.(UnregisterResp).RemainingTenants != 0 {
		t.Errorf("remaining = %d, want 0", got.(UnregisterResp).RemainingTenants)
	}
	if st := edge.stats(); st.Tenants != 0 {
		t.Errorf("stats tenants = %d, want 0", st.Tenants)
	}
}

func TestAdaptiveDeviceRenegotiatesShare(t *testing.T) {
	_, edge := startTestbed(t)
	// A competitor occupies half the edge so the adaptive device's share
	// change is observable.
	if _, err := edge.register(RegisterReq{DeviceID: "static", FLOPS: 1.2e9, ArrivalMean: 5}); err != nil {
		t.Fatalf("register static: %v", err)
	}
	cfg := testDeviceConfig(edge.Addr(), "adaptive")
	cfg.ArrivalMean = 2 // initial low estimate
	proc := &trace.Constant{PerSlot: 12}
	cfg.Arrivals = proc // actual load is 6x the estimate
	cfg.AdaptEvery = 5
	cfg.Slots = 25
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors", stats.Errors)
	}
	// After adaptation, the edge's view of the adaptive device's demand must
	// have risen well above the initial estimate of 2.
	st := edge.stats()
	if st.Tenants != 2 {
		t.Fatalf("tenants = %d, want 2", st.Tenants)
	}
	// With true rate 12 vs the competitor's 5, the adaptive device should
	// hold the larger share.
	if st.Shares["adaptive"] <= st.Shares["static"] {
		t.Errorf("adaptive device share %v not above static's %v after renegotiation",
			st.Shares["adaptive"], st.Shares["static"])
	}
}

func TestEdgeStatsCountsBacklog(t *testing.T) {
	_, edge := startTestbed(t)
	if _, err := edge.register(RegisterReq{DeviceID: "a", FLOPS: 1e9, ArrivalMean: 3}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if st := edge.stats(); st.PendingFirstBlock != 0 {
		t.Errorf("fresh edge backlog = %d", st.PendingFirstBlock)
	}
}
