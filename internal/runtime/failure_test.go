package runtime

import (
	"testing"
	"time"

	"leime/internal/netem"
	"leime/internal/offload"
)

func TestDeviceSurvivesCloudFailure(t *testing.T) {
	// The cloud dies mid-run: tasks that need the third block fail, tasks
	// exiting at the first two exits keep completing, and the device run
	// finishes (no hang) with the failures accounted.
	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{BandwidthBps: 5e7, Latency: 10 * time.Millisecond},
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	// Kill the cloud shortly after the run starts.
	killed := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = cloud.Close()
		close(killed)
	}()

	cfg := testDeviceConfig(edge.Addr(), "survivor")
	cfg.Slots = 40
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	<-killed
	if stats.Completed != stats.Generated {
		t.Errorf("accounting broken: completed %d != generated %d", stats.Completed, stats.Generated)
	}
	// Some cloud-bound tasks after the kill must have failed, but exits 1
	// and 2 keep working, so successes dominate.
	successes := stats.ExitCounts[0] + stats.ExitCounts[1] + stats.ExitCounts[2]
	if stats.Errors == 0 {
		t.Log("no task errors observed (cloud died between third-block tasks); acceptable but unusual")
	}
	if successes == 0 {
		t.Error("no tasks succeeded after cloud failure; exits 1-2 should be unaffected")
	}
	if stats.Errors > stats.Generated/2 {
		t.Errorf("%d of %d tasks failed; only third-block tasks should", stats.Errors, stats.Generated)
	}
}

func TestRunDeviceUnreachableEdge(t *testing.T) {
	cfg := testDeviceConfig("127.0.0.1:1", "lost")
	if _, err := RunDevice(cfg); err == nil {
		t.Error("device connected to an unreachable edge")
	}
}

func TestEdgeStartFailsWithUnreachableCloud(t *testing.T) {
	_, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: "127.0.0.1:1",
		TimeScale: testScale,
	})
	if err == nil {
		t.Error("edge started despite unreachable cloud")
	}
}

func TestConcurrentRegistrationAndTraffic(t *testing.T) {
	// Devices registering while others are mid-run (shares rebalancing
	// underneath live traffic) must not corrupt anything.
	_, edge := startTestbed(t)
	first := make(chan error, 1)
	go func() {
		cfg := testDeviceConfig(edge.Addr(), "early")
		cfg.Slots = 30
		_, err := RunDevice(cfg)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cfg := testDeviceConfig(edge.Addr(), "late")
	cfg.Slots = 15
	cfg.Seed = 99
	late, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("late device: %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("early device: %v", err)
	}
	if late.Errors != 0 {
		t.Errorf("late device saw %d errors during rebalancing", late.Errors)
	}
}

func TestAdmissionControlTriggersLocalFallback(t *testing.T) {
	// A tiny backlog cap on a heavily offloading device forces rejections;
	// the device must fall back to local execution and still complete every
	// task without errors.
	edge, err := StartEdge(EdgeConfig{
		Addr:                "127.0.0.1:0",
		FLOPS:               2e9, // slow edge: backlog actually builds
		Model:               testModel(),
		MaxPendingPerTenant: 1,
		TimeScale:           testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	cfg := testDeviceConfig(edge.Addr(), "pressured")
	eOnly := offload.EdgeOnly()
	cfg.Policy = &eOnly // insist on offloading so the cap must trip
	cfg.ArrivalMean = 8
	cfg.Slots = 25
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors despite fallback", stats.Errors)
	}
	if stats.Completed != stats.Generated {
		t.Errorf("conservation: %d != %d", stats.Completed, stats.Generated)
	}
	if stats.Fallbacks == 0 {
		t.Error("admission control never tripped; test configuration too lenient")
	}
}

func TestNoFallbacksWithoutAdmissionControl(t *testing.T) {
	_, edge := startTestbed(t)
	stats, err := RunDevice(testDeviceConfig(edge.Addr(), "free"))
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Fallbacks != 0 {
		t.Errorf("fallbacks counted with no backlog cap: %d", stats.Fallbacks)
	}
}
