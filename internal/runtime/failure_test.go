package runtime

import (
	"testing"
	"time"

	"leime/internal/netem"
	"leime/internal/offload"
)

func TestDeviceSurvivesCloudFailure(t *testing.T) {
	// The cloud dies mid-run: the edge degrades third-block tasks to the
	// Second exit instead of failing them, so every task still completes
	// with zero errors and the run finishes (no hang).
	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{BandwidthBps: 5e7, Latency: 10 * time.Millisecond},
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	// Kill the cloud shortly after the run starts.
	killed := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = cloud.Close()
		close(killed)
	}()

	cfg := testDeviceConfig(edge.Addr(), "survivor")
	cfg.Slots = 40
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	<-killed
	if stats.Completed != stats.Generated {
		t.Errorf("accounting broken: completed %d != generated %d", stats.Completed, stats.Generated)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors; cloud failure should degrade to exit 2, not fail", stats.Errors)
	}
	successes := stats.ExitCounts[0] + stats.ExitCounts[1] + stats.ExitCounts[2]
	if successes != stats.Generated {
		t.Errorf("only %d of %d tasks exited", successes, stats.Generated)
	}
}

func TestRunDeviceUnreachableEdge(t *testing.T) {
	cfg := testDeviceConfig("127.0.0.1:1", "lost")
	if _, err := RunDevice(cfg); err == nil {
		t.Error("device connected to an unreachable edge")
	}
}

func TestEdgeStartsWithUnreachableCloudAndDegrades(t *testing.T) {
	// The cloud connection is lazy: an edge whose cloud is down still
	// starts, serves two-exit work normally, and degrades exit-3 tasks to
	// the Second exit.
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: "127.0.0.1:1",
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge with unreachable cloud: %v", err)
	}
	defer edge.Close()
	cfg := testDeviceConfig(edge.Addr(), "cloudless")
	cfg.Slots = 20
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors; unreachable cloud should degrade, not fail", stats.Errors)
	}
	if stats.Completed != stats.Generated {
		t.Errorf("conservation: %d != %d", stats.Completed, stats.Generated)
	}
	if stats.ExitCounts[2] != 0 {
		t.Errorf("%d tasks claim exit 3 with no reachable cloud", stats.ExitCounts[2])
	}
}

func TestConcurrentRegistrationAndTraffic(t *testing.T) {
	// Devices registering while others are mid-run (shares rebalancing
	// underneath live traffic) must not corrupt anything.
	_, edge := startTestbed(t)
	first := make(chan error, 1)
	go func() {
		cfg := testDeviceConfig(edge.Addr(), "early")
		cfg.Slots = 30
		_, err := RunDevice(cfg)
		first <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cfg := testDeviceConfig(edge.Addr(), "late")
	cfg.Slots = 15
	cfg.Seed = 99
	late, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("late device: %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("early device: %v", err)
	}
	if late.Errors != 0 {
		t.Errorf("late device saw %d errors during rebalancing", late.Errors)
	}
}

func TestAdmissionControlTriggersLocalFallback(t *testing.T) {
	// A tiny backlog cap on a heavily offloading device forces rejections;
	// the device must fall back to local execution and still complete every
	// task without errors.
	edge, err := StartEdge(EdgeConfig{
		Addr:                "127.0.0.1:0",
		FLOPS:               2e9, // slow edge: backlog actually builds
		Model:               testModel(),
		MaxPendingPerTenant: 1,
		TimeScale:           testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	cfg := testDeviceConfig(edge.Addr(), "pressured")
	eOnly := offload.EdgeOnly()
	cfg.Policy = &eOnly // insist on offloading so the cap must trip
	cfg.ArrivalMean = 8
	cfg.Slots = 25
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors despite fallback", stats.Errors)
	}
	if stats.Completed != stats.Generated {
		t.Errorf("conservation: %d != %d", stats.Completed, stats.Generated)
	}
	if stats.Fallbacks == 0 {
		t.Error("admission control never tripped; test configuration too lenient")
	}
}

func TestNoFallbacksWithoutAdmissionControl(t *testing.T) {
	_, edge := startTestbed(t)
	stats, err := RunDevice(testDeviceConfig(edge.Addr(), "free"))
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Fallbacks != 0 {
		t.Errorf("fallbacks counted with no backlog cap: %d", stats.Fallbacks)
	}
}
