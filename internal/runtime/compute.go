package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrExecutorClosed is returned by Do/DoTimed/DoTimedCtx on a closed
// executor.
var ErrExecutorClosed = errors.New("runtime: executor closed")

// DefaultBatchMarginal is the incremental cost of each batched job beyond
// the first, as a fraction of a lone job's cost, when BatchConfig.Marginal
// is zero. The value models the measured shape of DNN batch inference:
// weights stream once per batch and per-item activation work dominates, so
// a batch of B costs ~(1 + (B-1)*0.25) lone-job times rather than B.
// internal/sim mirrors the same constant so model-clock and wall-clock runs
// amortize identically.
const DefaultBatchMarginal = 0.25

// BatchConfig enables size/delay-bounded batching on an Executor. A batch
// coalesces queued jobs of the same FLOPs class (the same DNN block): the
// server holds the head job open for at most MaxDelaySec model seconds,
// admits up to MaxSize co-arriving same-class jobs, then burns one
// amortized service for all of them. The zero value disables batching.
type BatchConfig struct {
	// MaxSize caps how many jobs one batch may coalesce; values <= 1
	// disable batching.
	MaxSize int
	// MaxDelaySec bounds, in model seconds (scaled like every other burn),
	// how long the server waits for co-arriving work before firing a
	// partial batch. It is the latency price of batching: an isolated job
	// pays up to this much extra wait. Non-positive disables batching.
	MaxDelaySec float64
	// Marginal is the cost of each additional batched job as a fraction of
	// the first job's cost, in (0, 1]; zero selects
	// DefaultBatchMarginal. 1 restores unbatched cost (no amortization).
	Marginal float64
}

// Enabled reports whether the configuration actually batches.
func (c BatchConfig) Enabled() bool { return c.MaxSize > 1 && c.MaxDelaySec > 0 }

// marginal resolves the zero value to the documented default.
func (c BatchConfig) marginal() float64 {
	if c.Marginal <= 0 {
		return DefaultBatchMarginal
	}
	return c.Marginal
}

// AmortizedFLOPs returns the FLOPs one batch of n jobs of the given
// per-job cost burns under this configuration.
func (c BatchConfig) AmortizedFLOPs(flops float64, n int) float64 {
	if n <= 1 {
		return flops
	}
	return flops * (1 + float64(n-1)*c.marginal())
}

// ExecOption configures optional Executor behaviour at construction.
type ExecOption func(*Executor)

// WithBatching enables size/delay-bounded batching; a disabled (zero)
// config is a no-op, so callers can plumb user configuration through
// unconditionally.
func WithBatching(cfg BatchConfig) ExecOption {
	return func(e *Executor) { e.batch = cfg }
}

// WithAdmission bounds the executor's queue: a Do call that would push the
// accepted-but-unfinished backlog beyond maxBacklogSec seconds of work (at
// the current rate) is rejected with ErrOverloaded instead of queueing
// without bound. Non-positive budgets leave the queue unbounded.
func WithAdmission(maxBacklogSec float64) ExecOption {
	return func(e *Executor) { e.admitSec = maxBacklogSec }
}

// Executor models one compute resource (a device CPU, a per-device edge
// share, the cloud GPU) as a single-server FIFO queue: jobs burn wall-clock
// time proportional to their FLOPs at the executor's current rate. The rate
// can change at runtime (re-allocation when devices join), affecting jobs
// that start after the change — the behaviour of a Docker CPU-quota update.
//
// Two optional capacity behaviours, both off by default: WithBatching
// coalesces same-FLOPs jobs into amortized batches, and WithAdmission
// bounds the backlog, rejecting excess work with ErrOverloaded.
type Executor struct {
	rateBits uint64 // atomic float64 bits: effective FLOPS
	scale    Scale
	batch    BatchConfig
	admitSec float64

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*job
	backlogFlops float64 // accepted-but-unfinished work, for admission
	closed       bool
	pending      int32 // atomic: accepted but unfinished jobs

	wg sync.WaitGroup
}

type job struct {
	flops float64
	enq   time.Time
	// cancel is the job's claim word: 0 queued, 1 cancelled by the
	// submitter (the worker discards it unburned), 2 claimed by the worker
	// (the burn runs to completion). Whoever wins the CAS from 0 decides.
	cancel int32
	// wait and service are written by the worker before done is closed;
	// closing the channel publishes them to the submitter.
	wait    time.Duration
	service time.Duration
	done    chan struct{}
}

// NewExecutor starts an executor at the given FLOPS rating. Close releases
// its worker. Options enable batching and admission control.
func NewExecutor(rateFLOPS float64, scale Scale, opts ...ExecOption) (*Executor, error) {
	if rateFLOPS <= 0 {
		return nil, fmt.Errorf("runtime: executor FLOPS %v must be positive", rateFLOPS)
	}
	e := &Executor{scale: scale}
	atomic.StoreUint64(&e.rateBits, math.Float64bits(rateFLOPS))
	for _, opt := range opts {
		opt(e)
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.worker()
	return e, nil
}

// Rate returns the current FLOPS rating.
func (e *Executor) Rate() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.rateBits))
}

// SetRate updates the FLOPS rating for subsequently started jobs.
func (e *Executor) SetRate(rateFLOPS float64) error {
	if rateFLOPS <= 0 {
		return fmt.Errorf("runtime: executor FLOPS %v must be positive", rateFLOPS)
	}
	atomic.StoreUint64(&e.rateBits, math.Float64bits(rateFLOPS))
	return nil
}

// Pending returns the number of accepted-but-unfinished jobs (queue plus the
// one in service).
func (e *Executor) Pending() int { return int(atomic.LoadInt32(&e.pending)) }

// BacklogSeconds returns how many seconds of accepted-but-unfinished work
// sit at the executor, at its current rate — the quantity WithAdmission
// budgets against.
func (e *Executor) BacklogSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backlogFlops / e.Rate()
}

// Do enqueues a job of the given FLOPs and blocks until it completes. It
// returns an error if the executor is closed.
func (e *Executor) Do(flops float64) error {
	_, _, err := e.DoTimed(flops)
	return err
}

// DoTimed is Do, additionally reporting how long the job waited in the
// queue before service began and how long service took — the split
// telemetry needs to attribute task latency to queueing vs compute.
func (e *Executor) DoTimed(flops float64) (wait, service time.Duration, err error) {
	return e.DoTimedCtx(context.Background(), flops)
}

// DoTimedCtx is DoTimed bounded by a context: a job still waiting in the
// queue when the context ends is abandoned unburned (the deadline-shed path
// of the edge and cloud), returning the context's error. A job already in
// service runs to completion — the compute is spent either way, so the
// result might as well be delivered.
//
// On an executor with an admission budget (WithAdmission), a job that would
// push the backlog beyond the budget is rejected with ErrOverloaded before
// it queues.
func (e *Executor) DoTimedCtx(ctx context.Context, flops float64) (wait, service time.Duration, err error) {
	if flops < 0 {
		flops = 0
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	j := &job{flops: flops, enq: time.Now(), done: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, 0, ErrExecutorClosed
	}
	if e.admitSec > 0 {
		if backlog := (e.backlogFlops + flops) / e.Rate(); backlog > e.admitSec {
			e.mu.Unlock()
			return 0, 0, fmt.Errorf("%w (backlog %.3gs over budget %.3gs)", ErrOverloaded, backlog, e.admitSec)
		}
	}
	e.backlogFlops += flops
	atomic.AddInt32(&e.pending, 1)
	e.queue = append(e.queue, j)
	e.cond.Signal()
	e.mu.Unlock()
	select {
	case <-j.done:
		return j.wait, j.service, nil
	case <-ctx.Done():
		if atomic.CompareAndSwapInt32(&j.cancel, 0, 1) {
			// Won the claim: the worker will discard the job unburned.
			return 0, 0, ctx.Err()
		}
		// The worker claimed it first; the burn finishes regardless.
		<-j.done
		return j.wait, j.service, nil
	}
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		var batch []*job
		if e.batch.Enabled() {
			batch = e.collectBatchLocked()
		} else {
			batch = []*job{e.queue[0]}
			e.queue = e.queue[1:]
		}
		e.mu.Unlock()
		e.runBatch(batch)
	}
}

// collectBatchLocked gathers the next batch: the contiguous same-FLOPs
// prefix of the queue, held open for up to the batch window waiting for
// co-arriving work. Called and returns with e.mu held. The prefix rule
// preserves FIFO order — a job of a different class behind the head caps
// the batch, because later same-class arrivals queue behind it and may not
// overtake.
func (e *Executor) collectBatchLocked() []*job {
	head := e.queue[0]
	deadline := time.Now().Add(e.scale.Seconds(e.batch.MaxDelaySec))
	// sync.Cond has no timed wait; an AfterFunc broadcast bounds the hold.
	timer := time.AfterFunc(time.Until(deadline), func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer timer.Stop()
	for {
		n := 0
		for n < len(e.queue) && n < e.batch.MaxSize && e.queue[n].flops == head.flops {
			n++
		}
		blocked := n < len(e.queue) // a different-class job caps the prefix
		if n >= e.batch.MaxSize || blocked || e.closed || !time.Now().Before(deadline) {
			batch := append([]*job(nil), e.queue[:n]...)
			e.queue = e.queue[n:]
			return batch
		}
		e.cond.Wait()
	}
}

// runBatch claims the batch's jobs, burns one amortized service for the
// survivors and publishes identical service observations to each. A batch
// of one degenerates exactly to the unbatched single-job burn.
func (e *Executor) runBatch(batch []*job) {
	live := make([]*job, 0, len(batch))
	var discarded []*job
	for _, j := range batch {
		if atomic.CompareAndSwapInt32(&j.cancel, 0, 2) {
			live = append(live, j)
		} else {
			// Cancelled while queued: drop it without burning compute.
			discarded = append(discarded, j)
		}
	}
	var start time.Time
	var service time.Duration
	if len(live) > 0 {
		start = time.Now()
		for _, j := range live {
			j.wait = start.Sub(j.enq)
		}
		flops := e.batch.AmortizedFLOPs(live[0].flops, len(live))
		if d := e.scale.Seconds(flops / e.Rate()); d > 0 {
			time.Sleep(d)
		}
		service = time.Since(start)
	}
	e.mu.Lock()
	for _, j := range batch {
		e.backlogFlops -= j.flops
	}
	e.mu.Unlock()
	for _, j := range discarded {
		atomic.AddInt32(&e.pending, -1)
		close(j.done)
	}
	for _, j := range live {
		j.service = service
		atomic.AddInt32(&e.pending, -1)
		close(j.done)
	}
}

// Close drains queued jobs and stops the worker. Do calls issued after
// Close fail; calls already queued still complete.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
