package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrExecutorClosed is returned by Do/DoTimed/DoTimedCtx on a closed
// executor.
var ErrExecutorClosed = errors.New("runtime: executor closed")

// Executor models one compute resource (a device CPU, a per-device edge
// share, the cloud GPU) as a single-server FIFO queue: jobs burn wall-clock
// time proportional to their FLOPs at the executor's current rate. The rate
// can change at runtime (re-allocation when devices join), affecting jobs
// that start after the change — the behaviour of a Docker CPU-quota update.
type Executor struct {
	rateBits uint64 // atomic float64 bits: effective FLOPS
	scale    Scale

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*job
	closed  bool
	pending int32 // atomic: accepted but unfinished jobs

	wg sync.WaitGroup
}

type job struct {
	flops float64
	enq   time.Time
	// cancel is the job's claim word: 0 queued, 1 cancelled by the
	// submitter (the worker discards it unburned), 2 claimed by the worker
	// (the burn runs to completion). Whoever wins the CAS from 0 decides.
	cancel int32
	// wait and service are written by the worker before done is closed;
	// closing the channel publishes them to the submitter.
	wait    time.Duration
	service time.Duration
	done    chan struct{}
}

// NewExecutor starts an executor at the given FLOPS rating. Close releases
// its worker.
func NewExecutor(flops float64, scale Scale) (*Executor, error) {
	if flops <= 0 {
		return nil, fmt.Errorf("runtime: executor FLOPS %v must be positive", flops)
	}
	e := &Executor{scale: scale}
	atomic.StoreUint64(&e.rateBits, math.Float64bits(flops))
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.worker()
	return e, nil
}

// Rate returns the current FLOPS rating.
func (e *Executor) Rate() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.rateBits))
}

// SetRate updates the FLOPS rating for subsequently started jobs.
func (e *Executor) SetRate(flops float64) error {
	if flops <= 0 {
		return fmt.Errorf("runtime: executor FLOPS %v must be positive", flops)
	}
	atomic.StoreUint64(&e.rateBits, math.Float64bits(flops))
	return nil
}

// Pending returns the number of accepted-but-unfinished jobs (queue plus the
// one in service).
func (e *Executor) Pending() int { return int(atomic.LoadInt32(&e.pending)) }

// Do enqueues a job of the given FLOPs and blocks until it completes. It
// returns an error if the executor is closed.
func (e *Executor) Do(flops float64) error {
	_, _, err := e.DoTimed(flops)
	return err
}

// DoTimed is Do, additionally reporting how long the job waited in the
// queue before service began and how long service took — the split
// telemetry needs to attribute task latency to queueing vs compute.
func (e *Executor) DoTimed(flops float64) (wait, service time.Duration, err error) {
	return e.DoTimedCtx(context.Background(), flops)
}

// DoTimedCtx is DoTimed bounded by a context: a job still waiting in the
// queue when the context ends is abandoned unburned (the deadline-shed path
// of the edge and cloud), returning the context's error. A job already in
// service runs to completion — the compute is spent either way, so the
// result might as well be delivered.
func (e *Executor) DoTimedCtx(ctx context.Context, flops float64) (wait, service time.Duration, err error) {
	if flops < 0 {
		flops = 0
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	j := &job{flops: flops, enq: time.Now(), done: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, 0, ErrExecutorClosed
	}
	atomic.AddInt32(&e.pending, 1)
	e.queue = append(e.queue, j)
	e.cond.Signal()
	e.mu.Unlock()
	select {
	case <-j.done:
		return j.wait, j.service, nil
	case <-ctx.Done():
		if atomic.CompareAndSwapInt32(&j.cancel, 0, 1) {
			// Won the claim: the worker will discard the job unburned.
			return 0, 0, ctx.Err()
		}
		// The worker claimed it first; the burn finishes regardless.
		<-j.done
		return j.wait, j.service, nil
	}
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		if !atomic.CompareAndSwapInt32(&j.cancel, 0, 2) {
			// Cancelled while queued: drop it without burning compute.
			atomic.AddInt32(&e.pending, -1)
			close(j.done)
			continue
		}
		j.wait = time.Since(j.enq)
		start := time.Now()
		if d := e.scale.Seconds(j.flops / e.Rate()); d > 0 {
			time.Sleep(d)
		}
		j.service = time.Since(start)
		atomic.AddInt32(&e.pending, -1)
		close(j.done)
	}
}

// Close drains queued jobs and stops the worker. Do calls issued after
// Close fail; calls already queued still complete.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
