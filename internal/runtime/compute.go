package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/control"
)

// ErrExecutorClosed is returned by Do/DoTimed/DoTimedCtx on a closed
// executor.
var ErrExecutorClosed = errors.New("runtime: executor closed")

// DefaultBatchMarginal is the incremental cost of each batched job beyond
// the first, as a fraction of a lone job's cost, when BatchConfig.Marginal
// is zero. The value models the measured shape of DNN batch inference:
// weights stream once per batch and per-item activation work dominates, so
// a batch of B costs ~(1 + (B-1)*0.25) lone-job times rather than B.
// internal/sim mirrors the same constant so model-clock and wall-clock runs
// amortize identically.
const DefaultBatchMarginal = 0.25

// BatchConfig enables size/delay-bounded batching on an Executor. A batch
// coalesces queued jobs of the same FLOPs class (the same DNN block): the
// server holds the head job open for at most MaxDelaySec model seconds,
// admits up to MaxSize co-arriving same-class jobs, then burns one
// amortized service for all of them. The zero value disables batching.
type BatchConfig struct {
	// MaxSize caps how many jobs one batch may coalesce; values <= 1
	// disable batching.
	MaxSize int
	// MaxDelaySec bounds, in model seconds (scaled like every other burn),
	// how long the server waits for co-arriving work before firing a
	// partial batch. It is the latency price of batching: an isolated job
	// pays up to this much extra wait. Non-positive disables batching.
	MaxDelaySec float64
	// Marginal is the cost of each additional batched job as a fraction of
	// the first job's cost, in (0, 1]; zero selects
	// DefaultBatchMarginal. 1 restores unbatched cost (no amortization).
	Marginal float64
}

// Enabled reports whether the configuration actually batches.
func (c BatchConfig) Enabled() bool { return c.MaxSize > 1 && c.MaxDelaySec > 0 }

// marginal resolves the zero value to the documented default.
func (c BatchConfig) marginal() float64 {
	if c.Marginal <= 0 {
		return DefaultBatchMarginal
	}
	return c.Marginal
}

// AmortizedFLOPs returns the FLOPs one batch of n jobs of the given
// per-job cost burns under this configuration.
func (c BatchConfig) AmortizedFLOPs(flops float64, n int) float64 {
	if n <= 1 {
		return flops
	}
	return flops * (1 + float64(n-1)*c.marginal())
}

// ExecOption configures optional Executor behaviour at construction; see
// WithPolicy in policy.go.
type ExecOption func(*Executor)

// Executor models one compute resource (a device CPU, a per-device edge
// share, the cloud GPU) as a single-server FIFO queue: jobs burn wall-clock
// time proportional to their FLOPs at the executor's current rate. The rate
// can change at runtime (re-allocation when devices join), affecting jobs
// that start after the change — the behaviour of a Docker CPU-quota update.
//
// Internally the queue is sharded by FLOPs class (one shard per distinct
// per-job cost — in ME-DNN terms, per DNN block): submitters of different
// classes enqueue and cancel against their own shard's lock and never
// contend with each other. A single dispatcher goroutine preserves the
// single-server semantics, serving the shard whose head job enqueued
// earliest — with batching disabled that reproduces the old global FIFO
// exactly (jobs run one at a time in arrival order); with batching enabled
// each shard is by construction a same-class run, and an open batch window
// fires early as soon as any other shard holds work, so no class stalls
// behind another's window.
//
// All capacity behaviour is configured through WithPolicy (ControlPolicy),
// off by default: batching coalesces same-FLOPs jobs into amortized
// batches (statically sized or driven by an adaptive control.Window);
// admission bounds the backlog (ErrOverloadCapacity) and, with deadline
// admission, rejects work whose predicted wait plus service cannot fit its
// context deadline (ErrDeadlineInfeasible); EDF replaces the FIFO queue
// order with earliest-deadline-first. The admission budget spans the whole
// executor (the sum of all shard backlogs); its accounting is a lock-free
// atomic so the check costs no cross-shard lock.
type Executor struct {
	rateBits uint64 // atomic float64 bits: effective FLOPS
	scale    Scale
	start    time.Time // construction instant: origin of the window's model clock

	// policy is the resolved control policy; batch, admitSec, edf, window
	// and pred are its unpacked hot-path fields.
	policy   ControlPolicy
	batch    BatchConfig
	admitSec float64
	edf      bool
	window   *control.Window    // adaptive batch window, nil when static
	pred     *control.Predictor // wait predictor, nil without deadline admission

	// shardsValue holds an immutable map[float64]*shard swapped
	// copy-on-write under shardsMu; lookups on the enqueue path are
	// lock-free. Shard creation (first job of a new FLOPs class) is the
	// only writer.
	shardsValue atomic.Value
	shardsMu    sync.Mutex

	// closeMu serializes enqueue sections against Close: submitters hold
	// the read side while they check closed and append, so every job
	// admitted before Close is visible to the dispatcher's drain.
	closeMu sync.RWMutex
	closed  atomic.Bool

	// ready wakes the dispatcher (capacity 1: one token is enough, the
	// dispatcher rescans all shards on every wake).
	ready chan struct{}

	// collecting names the shard whose batch window the dispatcher is
	// holding open, nil outside a window. Foreign-class enqueues broadcast
	// that shard's cond so the window fires without waiting for its timer.
	collecting atomic.Pointer[shard]

	seq         atomic.Uint64 // global enqueue order, for oldest-head dispatch
	queuedTotal atomic.Int64  // jobs queued across shards, not yet collected
	backlogBits atomic.Uint64 // float64 bits: accepted-but-unfinished FLOPs
	pending     int32         // atomic: accepted but unfinished jobs

	wg sync.WaitGroup
}

// shard is one FLOPs class's private queue. Its mutex is the only lock a
// submitter of that class touches on enqueue and the only one the
// dispatcher holds while collecting from it.
type shard struct {
	flops float64
	mu    sync.Mutex
	cond  *sync.Cond // wakes an open batch window on arrivals and close
	queue []*job
}

type job struct {
	flops float64
	seq   uint64
	enq   time.Time
	// deadline is the task's absolute deadline in UnixNano, 0 when the
	// submitting context carries none; EDF sorts on it.
	deadline int64
	// predSec is the wait the admission predictor quoted (model seconds);
	// the worker feeds the observed wait back against it.
	predSec float64
	// cancel is the job's claim word: 0 queued, 1 cancelled by the
	// submitter (the worker discards it unburned), 2 claimed by the worker
	// (the burn runs to completion). Whoever wins the CAS from 0 decides.
	cancel int32
	// wait and service are written by the worker before done is closed;
	// closing the channel publishes them to the submitter.
	wait    time.Duration
	service time.Duration
	done    chan struct{}
}

// jobLess orders jobs earliest-deadline-first with arrival order breaking
// ties; jobs without a deadline sort last, so a pure-FIFO workload is
// unaffected by EDF.
func jobLess(a, b *job) bool {
	da, db := a.deadline, b.deadline
	if da == 0 {
		da = math.MaxInt64
	}
	if db == 0 {
		db = math.MaxInt64
	}
	if da != db {
		return da < db
	}
	return a.seq < b.seq
}

// NewExecutor starts an executor at the given FLOPS rating. Close releases
// its worker. Options (WithPolicy) enable batching, admission control, EDF
// ordering and degradation.
func NewExecutor(rateFLOPS float64, scale Scale, opts ...ExecOption) (*Executor, error) {
	if rateFLOPS <= 0 {
		return nil, fmt.Errorf("runtime: executor FLOPS %v must be positive", rateFLOPS)
	}
	e := &Executor{ready: make(chan struct{}, 1)}
	e.scale = scale
	e.start = time.Now()
	atomic.StoreUint64(&e.rateBits, math.Float64bits(rateFLOPS))
	for _, opt := range opts {
		opt(e)
	}
	e.shardsValue.Store(map[float64]*shard{})
	e.wg.Add(1)
	go e.dispatcher()
	return e, nil
}

// shardFor returns the shard owning the FLOPs class, creating it on first
// use (copy-on-write, so the common lookup takes no lock).
func (e *Executor) shardFor(flops float64) *shard {
	if s, ok := e.shardsValue.Load().(map[float64]*shard)[flops]; ok {
		return s
	}
	e.shardsMu.Lock()
	defer e.shardsMu.Unlock()
	cur := e.shardsValue.Load().(map[float64]*shard)
	if s, ok := cur[flops]; ok {
		return s
	}
	next := make(map[float64]*shard, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	s := &shard{flops: flops}
	s.cond = sync.NewCond(&s.mu)
	next[flops] = s
	e.shardsValue.Store(next)
	return s
}

// addBacklog adjusts the executor-wide backlog accounting by delta FLOPs
// (lock-free CAS on the float bits).
func (e *Executor) addBacklog(delta float64) {
	for {
		old := e.backlogBits.Load()
		if e.backlogBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// wake hands the dispatcher a scan token; a token already pending covers
// this wake too.
func (e *Executor) wake() {
	select {
	case e.ready <- struct{}{}:
	default:
	}
}

// Rate returns the current FLOPS rating.
func (e *Executor) Rate() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.rateBits))
}

// SetRate updates the FLOPS rating for subsequently started jobs.
func (e *Executor) SetRate(rateFLOPS float64) error {
	if rateFLOPS <= 0 {
		return fmt.Errorf("runtime: executor FLOPS %v must be positive", rateFLOPS)
	}
	atomic.StoreUint64(&e.rateBits, math.Float64bits(rateFLOPS))
	return nil
}

// Pending returns the number of accepted-but-unfinished jobs (queue plus the
// one in service).
func (e *Executor) Pending() int { return int(atomic.LoadInt32(&e.pending)) }

// BacklogSeconds returns how many seconds of accepted-but-unfinished work
// sit at the executor (summed over all shards), at its current rate — the
// quantity ControlPolicy.MaxBacklogSec budgets against.
func (e *Executor) BacklogSeconds() float64 {
	return math.Float64frombits(e.backlogBits.Load()) / e.Rate()
}

// Policy returns the resolved control policy the executor runs under.
func (e *Executor) Policy() ControlPolicy { return e.policy }

// WindowDelaySec returns the batch window currently in force in model
// seconds — the adaptive controller's live value, or the static
// configuration. Zero means unbatched service.
func (e *Executor) WindowDelaySec() float64 { return e.batchDelaySec() }

// PredictedWaitSec returns the calibrated queueing-wait estimate (model
// seconds) deadline admission would quote for a job arriving now. Without
// deadline admission it returns the raw backlog.
func (e *Executor) PredictedWaitSec() float64 {
	if e.pred == nil {
		return e.BacklogSeconds()
	}
	return e.pred.Predict(e.BacklogSeconds())
}

// Do enqueues a job of the given FLOPs and blocks until it completes. It
// returns an error if the executor is closed.
func (e *Executor) Do(flops float64) error {
	_, _, err := e.DoTimed(flops)
	return err
}

// DoTimed is Do, additionally reporting how long the job waited in the
// queue before service began and how long service took — the split
// telemetry needs to attribute task latency to queueing vs compute.
func (e *Executor) DoTimed(flops float64) (wait, service time.Duration, err error) {
	return e.DoTimedCtx(context.Background(), flops)
}

// DoTimedCtx is DoTimed bounded by a context: a job still waiting in the
// queue when the context ends is abandoned unburned (the deadline-shed path
// of the edge and cloud), returning the context's error. A job already in
// service runs to completion — the compute is spent either way, so the
// result might as well be delivered.
//
// Admission control (ControlPolicy) runs before the job queues: a backlog
// budget rejects work with ErrOverloadCapacity, and deadline admission
// rejects work whose predicted wait plus service cannot fit the context
// deadline with ErrDeadlineInfeasible. Both unwrap to ErrOverloaded.
func (e *Executor) DoTimedCtx(ctx context.Context, flops float64) (wait, service time.Duration, err error) {
	if flops < 0 {
		flops = 0
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	j := &job{flops: flops, enq: time.Now(), done: make(chan struct{})}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		j.deadline = deadline.UnixNano()
	}
	// The read side of closeMu brackets the admit-and-enqueue section:
	// concurrent submitters (any mix of classes) share it freely; Close
	// excludes it, so every job that saw closed == false is fully enqueued
	// before Close proceeds and is drained by the dispatcher.
	e.closeMu.RLock()
	if e.closed.Load() {
		e.closeMu.RUnlock()
		return 0, 0, ErrExecutorClosed
	}
	if e.pred != nil && hasDeadline {
		// Deadline admission: quote the calibrated wait for the current
		// backlog; if wait plus this job's own service cannot fit the
		// deadline, reject now rather than queue work that is already
		// doomed to shed. EDF can serve an urgent job ahead of the backlog,
		// so the quote is conservative for exactly the jobs most at risk.
		rate := e.Rate()
		j.predSec = e.pred.Predict(math.Float64frombits(e.backlogBits.Load()) / rate)
		totalSec := j.predSec + flops/rate
		if time.Now().Add(e.scale.Seconds(totalSec)).After(deadline) {
			e.closeMu.RUnlock()
			return 0, 0, fmt.Errorf("%w (needs %.3gs, deadline in %v)", ErrDeadlineInfeasible, totalSec, time.Until(deadline))
		}
	}
	if e.admitSec > 0 {
		// Admit or reject with one CAS on the executor-wide backlog; no
		// lock is held, so rejection under overload is contention-free.
		for {
			old := e.backlogBits.Load()
			backlog := (math.Float64frombits(old) + flops) / e.Rate()
			if backlog > e.admitSec {
				e.closeMu.RUnlock()
				return 0, 0, fmt.Errorf("%w (backlog %.3gs over budget %.3gs)", ErrOverloadCapacity, backlog, e.admitSec)
			}
			if e.backlogBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+flops)) {
				break
			}
		}
	} else {
		e.addBacklog(flops)
	}
	atomic.AddInt32(&e.pending, 1)
	if e.window != nil {
		e.window.ObserveArrival(e.nowModelSec())
	}
	s := e.shardFor(flops)
	s.mu.Lock()
	j.seq = e.seq.Add(1)
	if e.edf && j.deadline != 0 {
		// Earliest-deadline-first: insert before the first queued job with
		// a later deadline (no-deadline jobs sort last). Jobs with equal
		// deadlines and all no-deadline jobs stay in arrival order, so with
		// no deadlines in play the queue is byte-for-byte the FIFO the
		// shard tests pin.
		idx := sort.Search(len(s.queue), func(i int) bool { return jobLess(j, s.queue[i]) })
		s.queue = append(s.queue, nil)
		copy(s.queue[idx+1:], s.queue[idx:])
		s.queue[idx] = j
	} else {
		s.queue = append(s.queue, j)
	}
	collecting := e.collecting.Load()
	if collecting == s {
		// The dispatcher holds this shard's batch window open; a same-class
		// arrival may join the batch.
		s.cond.Signal()
	}
	s.mu.Unlock()
	e.queuedTotal.Add(1)
	e.closeMu.RUnlock()
	if collecting != nil && collecting != s {
		// A foreign class's window is open: wake it so it fires early
		// rather than holding this job behind its delay bound.
		collecting.mu.Lock()
		collecting.cond.Broadcast()
		collecting.mu.Unlock()
	}
	e.wake()
	select {
	case <-j.done:
		return j.wait, j.service, nil
	case <-ctx.Done():
		if atomic.CompareAndSwapInt32(&j.cancel, 0, 1) {
			// Won the claim: the worker will discard the job unburned.
			return 0, 0, ctx.Err()
		}
		// The worker claimed it first; the burn finishes regardless.
		<-j.done
		return j.wait, j.service, nil
	}
}

// dispatcher is the executor's single server loop: scan the shards, serve
// the one whose head enqueued first, repeat. One batch burns at a time, so
// sharding changes contention, never the service discipline.
func (e *Executor) dispatcher() {
	defer e.wg.Done()
	for {
		s := e.oldestHead()
		if s == nil {
			if e.closed.Load() && e.queuedTotal.Load() == 0 {
				return
			}
			<-e.ready
			continue
		}
		e.runBatch(e.collect(s))
	}
}

// oldestHead returns the shard whose head job serves next — smallest
// enqueue sequence, or earliest deadline under EDF (each shard's queue is
// already deadline-sorted, so comparing heads compares the globally most
// urgent job of each class) — nil when every shard is empty. Scanning locks
// each shard only for the head peek.
func (e *Executor) oldestHead() *shard {
	var best *shard
	var bestHead *job
	for _, s := range e.shardsValue.Load().(map[float64]*shard) {
		s.mu.Lock()
		if len(s.queue) > 0 {
			head := s.queue[0]
			better := best == nil
			if !better {
				if e.edf {
					better = jobLess(head, bestHead)
				} else {
					better = head.seq < bestHead.seq
				}
			}
			if better {
				best, bestHead = s, head
			}
		}
		s.mu.Unlock()
	}
	return best
}

// batchDelaySec returns the window to hold the next batch open for, in
// model seconds: the adaptive controller's current value when one is
// installed, the static configuration otherwise, 0 when batching is off.
func (e *Executor) batchDelaySec() float64 {
	if e.window != nil {
		return e.window.DelaySec()
	}
	if !e.batch.Enabled() {
		return 0
	}
	return e.batch.MaxDelaySec
}

// nowModelSec is the executor's model clock: model seconds elapsed since
// construction, the timestamp stream the adaptive window consumes.
func (e *Executor) nowModelSec() float64 {
	return e.scale.ModelSeconds(time.Since(e.start))
}

// collect takes the next batch from shard s. Without batching it pops one
// job (global FIFO by oldest-head dispatch). With batching it holds the
// window open for co-arriving same-class work — every job in a shard is
// the same class, so the batch is simply the queue prefix — and fires
// early when the window fills, the executor closes, or another class
// enqueues anywhere (the cross-shard analogue of the old "a foreign job
// behind the head caps the batch" rule: no class waits out another's
// window).
func (e *Executor) collect(s *shard) []*job {
	delaySec := e.batchDelaySec()
	s.mu.Lock()
	if e.batch.MaxSize <= 1 || delaySec <= 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		e.queuedTotal.Add(-1)
		return []*job{j}
	}
	deadline := time.Now().Add(e.scale.Seconds(delaySec))
	e.collecting.Store(s)
	// sync.Cond has no timed wait; an AfterFunc broadcast bounds the hold.
	timer := time.AfterFunc(time.Until(deadline), func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for {
		n := len(s.queue)
		if n > e.batch.MaxSize {
			n = e.batch.MaxSize
		}
		// queuedTotal counts this shard's queue plus every other shard's;
		// any excess over our length is foreign work that must not stall
		// behind our window.
		foreign := e.queuedTotal.Load() > int64(len(s.queue))
		if n >= e.batch.MaxSize || foreign || e.closed.Load() || !time.Now().Before(deadline) {
			e.collecting.Store(nil)
			batch := append([]*job(nil), s.queue[:n]...)
			s.queue = s.queue[n:]
			s.mu.Unlock()
			e.queuedTotal.Add(int64(-n))
			return batch
		}
		s.cond.Wait()
	}
}

// runBatch claims the batch's jobs, burns one amortized service for the
// survivors and publishes identical service observations to each. A batch
// of one degenerates exactly to the unbatched single-job burn.
func (e *Executor) runBatch(batch []*job) {
	live := make([]*job, 0, len(batch))
	var discarded []*job
	for _, j := range batch {
		if atomic.CompareAndSwapInt32(&j.cancel, 0, 2) {
			live = append(live, j)
		} else {
			// Cancelled while queued: drop it without burning compute.
			discarded = append(discarded, j)
		}
	}
	var start time.Time
	var service time.Duration
	if len(live) > 0 {
		start = time.Now()
		for _, j := range live {
			j.wait = start.Sub(j.enq)
		}
		flops := e.batch.AmortizedFLOPs(live[0].flops, len(live))
		if d := e.scale.Seconds(flops / e.Rate()); d > 0 {
			time.Sleep(d)
		}
		service = time.Since(start)
		if e.pred != nil || e.window != nil {
			serviceSec := e.scale.ModelSeconds(service)
			for _, j := range live {
				waitSec := e.scale.ModelSeconds(j.wait)
				if e.pred != nil {
					e.pred.Observe(j.predSec, waitSec)
				}
				if e.window != nil {
					e.window.ObserveLatency(waitSec + serviceSec)
				}
			}
		}
	}
	for _, j := range batch {
		e.addBacklog(-j.flops)
	}
	for _, j := range discarded {
		atomic.AddInt32(&e.pending, -1)
		close(j.done)
	}
	for _, j := range live {
		j.service = service
		atomic.AddInt32(&e.pending, -1)
		close(j.done)
	}
}

// Close drains queued jobs and stops the dispatcher. Do calls issued after
// Close fail; calls already queued still complete.
func (e *Executor) Close() {
	e.closeMu.Lock()
	if e.closed.Load() {
		e.closeMu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed.Store(true)
	e.closeMu.Unlock()
	// Wake an open batch window and the dispatcher's idle wait.
	for _, s := range e.shardsValue.Load().(map[float64]*shard) {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	e.wake()
	e.wg.Wait()
}
