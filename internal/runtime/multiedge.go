package runtime

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/fleet"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
)

// Device-side edge federation. The device dials every edge in
// DeviceConfig.EdgeAddrs, heartbeats them through a fleet registry, and each
// decision epoch folds their advertised backlog and capacity into the
// Lyapunov drift term (offload.SelectEdge). When another edge's
// drift-plus-penalty objective beats the current one by more than the
// hysteresis margin, the device migrates: an explicit registration at the
// target (re-solving its KKT allocation), then a best-effort unregistration
// at the origin. Tasks always go to the edge that was current when they
// launched; in-flight work survives migrations by degrading locally at
// worst.

// multiEdge is the device's federation state: one reliable client and one
// cached heartbeat view per configured edge.
type multiEdge struct {
	d       *deviceRun
	addrs   []string
	index   map[string]int
	clients []*rpc.ReliableClient
	reg     *fleet.Registry
	cur     atomic.Int32 // index of the device's current (home) edge

	mu    sync.Mutex
	views []HeartbeatResp // last heartbeat per edge
	fresh []bool          // views[i] valid (heartbeat succeeded at least once, latest did)

	stop context.CancelFunc
	wg   sync.WaitGroup
}

// startMultiEdge dials the edge fleet, registers the device at its initial
// home (a stable hash of the ID spreads devices across edges), warms the
// health views and starts the background heartbeat poller.
func startMultiEdge(d *deviceRun) (*multiEdge, error) {
	cfg := d.cfg
	me := &multiEdge{
		d:     d,
		addrs: append([]string(nil), cfg.EdgeAddrs...),
		index: make(map[string]int, len(cfg.EdgeAddrs)),
		views: make([]HeartbeatResp, len(cfg.EdgeAddrs)),
		fresh: make([]bool, len(cfg.EdgeAddrs)),
	}
	for i, addr := range me.addrs {
		shaper, err := netem.NewShaper(scaleLink(cfg.Uplink, cfg.TimeScale), cfg.Seed^0xde^(int64(i+1)<<20))
		if err != nil {
			me.close()
			return nil, err
		}
		i := i
		me.clients = append(me.clients, rpc.DialReliable(addr, shaper, rpc.ReliableOptions{
			Retry:   cfg.Retry,
			Breaker: cfg.Breaker,
			// Re-register on (re)connection — but only at the device's
			// current home. Heartbeats reach every edge in the fleet, and a
			// bare probe must not create a tenancy (and a KKT share) at an
			// edge the device does not use.
			OnConnect: func(ctx context.Context, c *rpc.Client) error {
				if int(me.cur.Load()) != i {
					return nil
				}
				got, err := c.Call(ctx, RegisterReq{DeviceID: cfg.ID, FLOPS: cfg.FLOPS, ArrivalMean: d.rate(), Model: cfg.Model})
				if err != nil {
					return err
				}
				if resp, ok := got.(RegisterResp); ok && resp.ShareFLOPS > 0 {
					d.setShare(resp.ShareFLOPS)
				}
				return nil
			},
			OnRetry:         d.onRetry,
			OnBreakerChange: d.onBreakerChange,
			Seed:            cfg.Seed ^ 0x9e77 ^ (int64(i+1) << 16),
		}))
		me.index[addr] = i
	}

	fcfg := cfg.Fleet
	if fcfg.Every <= 0 {
		// Default the heartbeat cadence to the decision epoch: selection
		// reads views at slot boundaries, so polling faster buys nothing.
		fcfg.Every = cfg.TimeScale.Seconds(cfg.TauSec)
		if fcfg.Every < 10*time.Millisecond {
			fcfg.Every = 10 * time.Millisecond
		}
	}
	me.reg = fleet.New(fcfg, me.probe)
	for _, addr := range me.addrs {
		me.reg.Join(addr)
	}

	// Pick the initial home: hash order, rotating past dead edges. The
	// first successful call registers via OnConnect.
	h := fnv.New32a()
	_, _ = h.Write([]byte(cfg.ID))
	start := int(h.Sum32() % uint32(len(me.addrs)))
	var firstErr error
	registered := false
	for k := 0; k < len(me.addrs); k++ {
		idx := (start + k) % len(me.addrs)
		me.cur.Store(int32(idx))
		ctx, cancel := context.WithTimeout(context.Background(), rpc.DialTimeout)
		_, err := me.clients[idx].Call(ctx, QueueStatReq{DeviceID: cfg.ID})
		cancel()
		if err == nil {
			registered = true
			break
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if !registered {
		me.close()
		return nil, fmt.Errorf("runtime: register: %w", firstErr)
	}
	d.clientP.Store(me.clients[me.cur.Load()])
	d.tel.curEdge.Set(float64(me.cur.Load()))

	// Warm every view synchronously so the first decision epoch selects
	// over real health, then keep polling in the background.
	pctx, pcancel := context.WithTimeout(context.Background(), rpc.DialTimeout)
	me.reg.Poll(pctx)
	pcancel()
	ctx, cancel := context.WithCancel(context.Background())
	me.stop = cancel
	me.wg.Add(1)
	go func() {
		defer me.wg.Done()
		me.reg.Run(ctx)
	}()
	return me, nil
}

// probe is the registry's heartbeat: one identified HeartbeatReq per edge,
// caching the reply for the selection step.
func (me *multiEdge) probe(ctx context.Context, addr string) (fleet.Health, error) {
	i, ok := me.index[addr]
	if !ok {
		return fleet.Health{}, fmt.Errorf("runtime: unknown fleet member %q", addr)
	}
	got, err := me.clients[i].Call(ctx, HeartbeatReq{DeviceID: me.d.cfg.ID})
	if err != nil {
		me.mu.Lock()
		me.fresh[i] = false
		me.mu.Unlock()
		return fleet.Health{}, err
	}
	h, ok := got.(HeartbeatResp)
	if !ok {
		return fleet.Health{}, fmt.Errorf("runtime: unexpected heartbeat reply %T", got)
	}
	me.mu.Lock()
	me.views[i] = h
	me.fresh[i] = true
	me.mu.Unlock()
	return fleet.Health{Ready: h.Ready, FLOPS: h.FLOPS, Tenants: h.Tenants,
		BacklogSec: h.BacklogSec, Saturated: h.Saturated}, nil
}

// step runs one decision epoch in federation mode: build the candidate edge
// states from cached heartbeats, select the drift-minimizing edge, migrate
// if the improvement clears the hysteresis margin, and return the
// offloading ratio against the chosen edge. No live candidate means
// device-only (x = 0), the same degradation as a tripped breaker.
func (me *multiEdge) step(ctrl *offload.Controller, policy offload.Policy, dev offload.Device, arrivals, localQ float64) float64 {
	cur := int(me.cur.Load())
	me.mu.Lock()
	views := append([]HeartbeatResp(nil), me.views...)
	fresh := append([]bool(nil), me.fresh...)
	me.mu.Unlock()

	var cands []int
	var states []offload.EdgeState
	for i := range me.addrs {
		if !fresh[i] {
			continue
		}
		if m, ok := me.reg.Member(me.addrs[i]); !ok || m.State == fleet.StateDown {
			continue
		}
		if me.clients[i].Breaker().State() != rpc.BreakerClosed {
			continue
		}
		st := offload.EdgeState{QueueSec: views[i].BacklogSec}
		if i == cur {
			// Resident view: the edge reports this tenant's solved share
			// and first-block backlog directly.
			st.ShareFLOPS = views[i].ShareFLOPS
			if st.ShareFLOPS <= 0 {
				st.ShareFLOPS = me.d.share()
			}
			st.Backlog = float64(views[i].PendingFirstBlock)
		} else {
			// Non-resident estimate: joining adds one tenant to the KKT
			// allocation, so roughly an equal split with one more head.
			st.ShareFLOPS = views[i].FLOPS / float64(views[i].Tenants+1)
		}
		cands = append(cands, i)
		states = append(states, st)
	}

	best, evals := ctrl.SelectEdge(dev, arrivals, localQ, states)
	if best < 0 {
		return 0
	}
	curPos := -1
	for p, i := range cands {
		if i == cur {
			curPos = p
		}
	}
	if curPos >= 0 && cands[best] != cur {
		// Hysteresis: the non-resident share is an optimistic estimate, so
		// demand a clear improvement before paying the migration.
		margin := me.d.cfg.SwitchMargin
		if margin <= 0 {
			margin = 0.05
		}
		if evals[best].Objective >= evals[curPos].Objective-margin*math.Abs(evals[curPos].Objective) {
			best = curPos
		}
	}
	if target := cands[best]; target != cur {
		if me.migrate(cur, target) {
			states[best].ShareFLOPS = me.d.share()
		} else if curPos >= 0 {
			best = curPos
		} else {
			return 0
		}
	}
	slot := offload.Slot{
		Arrivals:       arrivals,
		State:          offload.State{Q: localQ, H: states[best].Backlog},
		EdgeShareFLOPS: states[best].ShareFLOPS,
	}
	return policy.Decide(ctrl, dev, slot)
}

// migrate moves the device's tenancy: explicit registration at the target
// (the edge re-solves its KKT allocation and returns the fresh share), then
// a best-effort unregistration at the origin so its share redistributes.
// On failure the device stays where it was.
func (me *multiEdge) migrate(from, to int) bool {
	// Point home at the target first so the client's OnConnect registers
	// there if the dial races this explicit registration.
	me.cur.Store(int32(to))
	ctx, cancel := me.d.controlCtx()
	got, err := me.clients[to].Call(ctx, RegisterReq{
		DeviceID: me.d.cfg.ID, FLOPS: me.d.cfg.FLOPS, ArrivalMean: me.d.rate(), Model: me.d.cfg.Model,
	})
	cancel()
	if err != nil {
		me.cur.Store(int32(from))
		return false
	}
	if resp, ok := got.(RegisterResp); ok && resp.ShareFLOPS > 0 {
		me.d.setShare(resp.ShareFLOPS)
	}
	me.d.clientP.Store(me.clients[to])
	me.d.tel.migrations.Inc()
	me.d.tel.curEdge.Set(float64(to))
	me.d.mu.Lock()
	me.d.stats.Migrations++
	me.d.mu.Unlock()
	ctx, cancel = me.d.controlCtx()
	_, _ = me.clients[from].Call(ctx, UnregisterReq{DeviceID: me.d.cfg.ID})
	cancel()
	return true
}

// close stops the heartbeat poller and closes every edge client.
func (me *multiEdge) close() {
	if me.stop != nil {
		me.stop()
		me.wg.Wait()
	}
	for _, c := range me.clients {
		_ = c.Close()
	}
}
