package runtime

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
)

// testModel is an ME-Inception-v3-like deployment with compute scaled so a
// compressed-time testbed run stays fast.
func testModel() offload.ModelParams {
	return offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
}

const testScale Scale = 0.01

func startTestbed(t *testing.T) (*Cloud, *Edge) {
	t.Helper()
	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{BandwidthBps: 5e7, Latency: 30 * time.Millisecond},
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	t.Cleanup(func() { _ = edge.Close() })
	return cloud, edge
}

func testDeviceConfig(edgeAddr, id string) DeviceConfig {
	return DeviceConfig{
		ID:          id,
		FLOPS:       1.2e9,
		Model:       testModel(),
		EdgeAddr:    edgeAddr,
		Uplink:      netem.Link{BandwidthBps: 1e7, Latency: 20 * time.Millisecond},
		ArrivalMean: 5,
		TauSec:      1,
		V:           1e4,
		Slots:       30,
		WarmupSlots: 5,
		TimeScale:   testScale,
		Seed:        11,
	}
}

func TestExecutorFIFOAndRate(t *testing.T) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	if got := e.Rate(); got != 1e9 {
		t.Errorf("Rate() = %v", got)
	}
	start := time.Now()
	if err := e.Do(5e7); err != nil { // 50 ms at 1 GFLOPS
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("job finished too fast: %v", elapsed)
	}
	if err := e.SetRate(1e10); err != nil {
		t.Fatalf("SetRate: %v", err)
	}
	start = time.Now()
	if err := e.Do(5e7); err != nil { // 5 ms at 10 GFLOPS
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("job did not speed up after SetRate: %v", elapsed)
	}
}

func TestExecutorQueuesConcurrentJobs(t *testing.T) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Do(2e7); err != nil { // 20 ms each
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	// Four 20 ms jobs on one server must take ~80 ms, not ~20 ms.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("jobs ran in parallel on a single server: %v", elapsed)
	}
}

func TestExecutorCloseRejectsNewWork(t *testing.T) {
	e, err := NewExecutor(1e9, 1)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	e.Close()
	if err := e.Do(1); err == nil {
		t.Error("Do after Close succeeded")
	}
	e.Close() // idempotent
}

func TestExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(0, 1); err == nil {
		t.Error("zero-rate executor accepted")
	}
	e, _ := NewExecutor(1e9, 1)
	defer e.Close()
	if err := e.SetRate(-1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestScaleHelpers(t *testing.T) {
	s := Scale(0.5)
	if got := s.D(time.Second); got != 500*time.Millisecond {
		t.Errorf("D = %v", got)
	}
	if got := s.Seconds(2); got != time.Second {
		t.Errorf("Seconds = %v", got)
	}
	if got := Scale(0).D(time.Second); got != time.Second {
		t.Errorf("zero scale should pass through, got %v", got)
	}
}

func TestScaleLink(t *testing.T) {
	l := netem.Link{BandwidthBps: 1e7, Latency: 100 * time.Millisecond, Jitter: 10 * time.Millisecond}
	scaled := scaleLink(l, 0.1)
	if scaled.BandwidthBps != 1e8 {
		t.Errorf("bandwidth = %v, want 1e8", scaled.BandwidthBps)
	}
	if scaled.Latency != 10*time.Millisecond {
		t.Errorf("latency = %v", scaled.Latency)
	}
	if same := scaleLink(l, 1); same != l {
		t.Errorf("scale 1 should be identity")
	}
}

func TestEndToEndSingleDevice(t *testing.T) {
	_, edge := startTestbed(t)
	stats, err := RunDevice(testDeviceConfig(edge.Addr(), "pi-1"))
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Generated == 0 {
		t.Fatal("no tasks generated")
	}
	if stats.Completed != stats.Generated {
		t.Errorf("completed %d != generated %d", stats.Completed, stats.Generated)
	}
	if stats.Errors != 0 {
		t.Errorf("%d task errors", stats.Errors)
	}
	if stats.TCT.Count() == 0 {
		t.Fatal("no post-warmup TCT samples")
	}
	// Physical floor: nothing completes faster than block 1 on the edge.
	if min := stats.TCT.Percentile(0); min < testModel().Mu[0]/6e10 {
		t.Errorf("min TCT %v below physical floor", min)
	}
	// Exit fractions approximate sigma.
	total := float64(stats.ExitCounts[0] + stats.ExitCounts[1] + stats.ExitCounts[2])
	sigma := testModel().Sigma
	wants := []float64{sigma[0], sigma[1] - sigma[0], 1 - sigma[1]}
	for i, want := range wants {
		got := float64(stats.ExitCounts[i]) / total
		if math.Abs(got-want) > 0.15 {
			t.Errorf("exit %d fraction %v, want ~%v", i+1, got, want)
		}
	}
}

func TestEndToEndConcurrentDevices(t *testing.T) {
	_, edge := startTestbed(t)
	ids := []string{"pi-1", "pi-2", "nano-1"}
	deviceFLOPS := []float64{1.2e9, 1.2e9, 9.84e9}
	var wg sync.WaitGroup
	results := make([]*DeviceStats, len(ids))
	errs := make([]error, len(ids))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := testDeviceConfig(edge.Addr(), ids[i])
			cfg.FLOPS = deviceFLOPS[i]
			cfg.Seed = int64(100 + i)
			cfg.Slots = 20
			results[i], errs[i] = RunDevice(cfg)
		}(i)
	}
	wg.Wait()
	for i := range ids {
		if errs[i] != nil {
			t.Fatalf("device %s: %v", ids[i], errs[i])
		}
		if results[i].Errors != 0 {
			t.Errorf("device %s: %d task errors", ids[i], results[i].Errors)
		}
		if results[i].Completed != results[i].Generated {
			t.Errorf("device %s: conservation violated", ids[i])
		}
	}
}

func TestEdgeRebalancesSharesOnRegistration(t *testing.T) {
	_, edge := startTestbed(t)
	// First registration takes the whole edge; a second identical device
	// must shrink the first device's share to about half.
	r1, err := edge.register(RegisterReq{DeviceID: "a", FLOPS: 1.2e9, ArrivalMean: 10})
	if err != nil {
		t.Fatalf("register a: %v", err)
	}
	if got := r1.(RegisterResp).ShareFLOPS; math.Abs(got-6e10) > 1e7 {
		t.Errorf("single tenant share = %v, want full edge", got)
	}
	if _, err = edge.register(RegisterReq{DeviceID: "b", FLOPS: 1.2e9, ArrivalMean: 10}); err != nil {
		t.Fatalf("register b: %v", err)
	}
	r1again, err := edge.register(RegisterReq{DeviceID: "a", FLOPS: 1.2e9, ArrivalMean: 10})
	if err != nil {
		t.Fatalf("re-register a: %v", err)
	}
	if got := r1again.(RegisterResp).ShareFLOPS; math.Abs(got-3e10) > 1e9 {
		t.Errorf("share after second tenant = %v, want ~half", got)
	}
}

func TestEdgeRejectsUnknownDevice(t *testing.T) {
	_, edge := startTestbed(t)
	if _, err := edge.handle(context.Background(), rpc.Meta{}, QueueStatReq{DeviceID: "ghost"}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := edge.handle(context.Background(), rpc.Meta{}, FirstBlockReq{DeviceID: "ghost"}); err == nil {
		t.Error("unknown device task accepted")
	}
	if _, err := edge.handle(context.Background(), rpc.Meta{}, RegisterReq{DeviceID: ""}); err == nil {
		t.Error("empty device id accepted")
	}
	if _, err := edge.handle(context.Background(), rpc.Meta{}, "bogus"); err == nil {
		t.Error("bogus request accepted")
	}
}

func TestEdgeWithoutCloudCapsAtSecondExit(t *testing.T) {
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()
	if _, err := edge.register(RegisterReq{DeviceID: "a", FLOPS: 1e9, ArrivalMean: 1}); err != nil {
		t.Fatalf("register: %v", err)
	}
	got, err := edge.handle(context.Background(), rpc.Meta{}, FirstBlockReq{DeviceID: "a", TaskID: 1, ExitStage: 3})
	if err != nil {
		t.Fatalf("firstBlock: %v", err)
	}
	if resp := got.(TaskResp); resp.ExitStage != 2 {
		t.Errorf("cloudless edge returned exit %d, want 2", resp.ExitStage)
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	good := testDeviceConfig("127.0.0.1:9", "x")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*DeviceConfig){
		func(c *DeviceConfig) { c.ID = "" },
		func(c *DeviceConfig) { c.FLOPS = 0 },
		func(c *DeviceConfig) { c.EdgeAddr = "" },
		func(c *DeviceConfig) { c.TauSec = 0 },
		func(c *DeviceConfig) { c.Slots = 0 },
		func(c *DeviceConfig) { c.WarmupSlots = c.Slots },
		func(c *DeviceConfig) { c.Uplink.BandwidthBps = -1 },
	}
	for i, mutate := range cases {
		cfg := testDeviceConfig("127.0.0.1:9", "x")
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCloudValidation(t *testing.T) {
	if _, err := StartCloud(CloudConfig{Addr: "127.0.0.1:0", FLOPS: 0, Block3FLOPs: 1}); err == nil {
		t.Error("zero cloud FLOPS accepted")
	}
	if _, err := StartCloud(CloudConfig{Addr: "127.0.0.1:0", FLOPS: 1, Block3FLOPs: 0}); err == nil {
		t.Error("zero block-3 FLOPs accepted")
	}
}

func TestDeviceStageBreakdown(t *testing.T) {
	_, edge := startTestbed(t)
	cfg := testDeviceConfig(edge.Addr(), "stages")
	dOnly := offload.DeviceOnly()
	cfg.Policy = &dOnly
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.LocalStage.Count() == 0 || stats.RemoteStage.Count() == 0 {
		t.Fatal("stage breakdown not recorded")
	}
	// Stage sums must reconstruct the total within measurement noise.
	total := stats.TCT.Mean()
	parts := stats.LocalStage.Mean() + stats.RemoteStage.Mean()
	if diff := parts - total; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("stage means %v do not sum to TCT mean %v", parts, total)
	}
	// Under D-only, every task pays first-block compute locally.
	if stats.LocalStage.Percentile(0) <= 0 {
		t.Errorf("D-only tasks should all have local compute time, min = %v", stats.LocalStage.Percentile(0))
	}
}

func TestHeterogeneousModelsShareOneEdge(t *testing.T) {
	// Two devices run different applications (different block FLOPs, data
	// sizes and exit rates) against the same edge; each tenant's work must
	// execute with its own model.
	_, edge := startTestbed(t)
	small := offload.ModelParams{
		Mu:    [3]float64{5e7, 2e8, 3e8},
		D:     [3]float64{3088, 16384, 4096},
		Sigma: [3]float64{0.5, 0.9, 1},
	}
	big := testModel()

	var wg sync.WaitGroup
	stats := make([]*DeviceStats, 2)
	errs := make([]error, 2)
	models := []offload.ModelParams{small, big}
	for i, m := range models {
		wg.Add(1)
		go func(i int, m offload.ModelParams) {
			defer wg.Done()
			cfg := testDeviceConfig(edge.Addr(), []string{"small-app", "big-app"}[i])
			cfg.Model = m
			cfg.Slots = 20
			cfg.Seed = int64(40 + i)
			stats[i], errs[i] = RunDevice(cfg)
		}(i, m)
	}
	wg.Wait()
	for i := range models {
		if errs[i] != nil {
			t.Fatalf("device %d: %v", i, errs[i])
		}
		if stats[i].Errors != 0 {
			t.Errorf("device %d: %d errors", i, stats[i].Errors)
		}
	}
	// The small app's exit-3 rate (1 - 0.9 = 10%) differs from the big
	// app's (20%): the edge must have honored per-tenant sigma via the
	// device-side sampling. Exit sampling is deterministic under the fixed
	// seeds, unlike wall-clock TCT ordering, which inverts under race
	// instrumentation where fixed per-RPC overhead swamps the per-model
	// compute gap.
	exit3 := func(s *DeviceStats) float64 {
		return float64(s.ExitCounts[2]) / float64(s.Completed)
	}
	if exit3(stats[0]) >= exit3(stats[1]) {
		t.Errorf("small app exit-3 rate (%v) should be below big app's (%v)",
			exit3(stats[0]), exit3(stats[1]))
	}
	for i := range models {
		if stats[i].Completed == 0 || stats[i].TCT.Mean() <= 0 {
			t.Errorf("device %d: no useful completions (completed=%d, mean TCT %v)",
				i, stats[i].Completed, stats[i].TCT.Mean())
		}
	}
}
