package runtime

import (
	"testing"

	"leime/internal/offload"
	"leime/internal/telemetry"
	"leime/internal/trace"
)

// TestOffloadedTaskProducesSingleTrace runs one fully-offloaded task that
// survives to the final exit through an in-process device/edge/cloud testbed
// sharing a tracer, and checks the resulting trace: one trace ID, the full
// span taxonomy, consistent parent links and time nesting.
func TestOffloadedTaskProducesSingleTrace(t *testing.T) {
	tr := telemetry.NewTracer(256)
	model := testModel()
	model.Sigma = [3]float64{0, 0, 1} // every task survives to the cloud exit

	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: model.Mu[2],
		TimeScale:   testScale,
		Tracer:      tr,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	defer cloud.Close()
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     model,
		CloudAddr: cloud.Addr(),
		TimeScale: testScale,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	offloadAll := offload.Policy{
		Name:   "all",
		Decide: func(*offload.Controller, offload.Device, offload.Slot) float64 { return 1 },
	}
	cfg := testDeviceConfig(edge.Addr(), "dev-trace")
	cfg.Model = model
	cfg.Arrivals = &trace.Constant{PerSlot: 1}
	cfg.Policy = &offloadAll
	cfg.Slots = 1
	cfg.WarmupSlots = 0
	cfg.Tracer = tr
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Completed != 1 || stats.Errors != 0 {
		t.Fatalf("want 1 clean completion, got completed=%d errors=%d", stats.Completed, stats.Errors)
	}
	if stats.ExitCounts[2] != 1 {
		t.Fatalf("want the task to take exit 3, got exits %v", stats.ExitCounts)
	}

	spans := tr.Spans()
	byID := make(map[uint64]telemetry.Span, len(spans))
	names := make(map[string]int, len(spans))
	var root telemetry.Span
	for _, s := range spans {
		byID[s.Span] = s
		names[s.Name]++
		if s.Parent == 0 {
			root = s
		}
	}

	// One trace: every span shares the root's trace ID.
	if root.Name != "task" {
		t.Fatalf("root span is %q, want \"task\" (spans: %v)", root.Name, names)
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %q has trace %d, want %d", s.Name, s.Trace, root.Trace)
		}
		if s.Task != root.Task {
			t.Errorf("span %q has task %d, want %d", s.Name, s.Task, root.Task)
		}
	}

	// Full taxonomy: decision, RPC hops, queueing, block compute, exit.
	want := map[string]int{
		"task": 1, "device.decision": 1, "rpc.first_block": 1,
		"edge.queue": 2, "edge.block1": 1, "edge.block2": 1,
		"rpc.cloud": 1, "cloud.queue": 1, "cloud.block3": 1, "exit": 1,
	}
	for name, n := range want {
		if names[name] != n {
			t.Errorf("want %d %q span(s), got %d (all: %v)", n, name, names[name], names)
		}
	}
	if len(spans) != 11 {
		t.Errorf("want 11 spans, got %d: %v", len(spans), names)
	}

	// Parent links resolve within the trace and nest in time. Queue/compute
	// spans are recorded retroactively from executor timings after the
	// enclosing RPC span's work but before it ends, so children always fall
	// inside a live parent; allow a small tolerance for clock reads taken a
	// few instructions apart.
	const eps = 0.05 // tracer-clock seconds
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %q parent %d not in trace", s.Name, s.Parent)
			continue
		}
		if s.Start < p.Start-eps || s.End > p.End+eps {
			t.Errorf("span %q [%f,%f] escapes parent %q [%f,%f]", s.Name, s.Start, s.End, p.Name, p.Start, p.End)
		}
		if s.End < s.Start {
			t.Errorf("span %q ends (%f) before it starts (%f)", s.Name, s.End, s.Start)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans with capacity to spare", tr.Dropped())
	}
}
