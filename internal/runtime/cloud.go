package runtime

import (
	"context"
	"errors"
	"fmt"

	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// CloudConfig configures the cloud tier.
type CloudConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// FLOPS is the cloud capability F^c.
	FLOPS float64
	// Block3FLOPs is mu_3: the third block's operation count.
	Block3FLOPs float64
	// TimeScale compresses testbed time.
	TimeScale Scale
	// Tracer records task-lifecycle spans for requests arriving with a
	// trace context; nil disables tracing.
	Tracer *telemetry.Tracer
	// Metrics registers the cloud's counters and histograms; nil disables
	// them.
	Metrics *telemetry.Registry
}

// Cloud serves third-block continuations.
type Cloud struct {
	srv  *rpc.Server
	exec *Executor
}

// StartCloud launches the cloud server.
func StartCloud(cfg CloudConfig) (*Cloud, error) {
	if cfg.FLOPS <= 0 || cfg.Block3FLOPs <= 0 {
		return nil, fmt.Errorf("runtime: cloud FLOPS (%v) and block-3 FLOPs (%v) must be positive", cfg.FLOPS, cfg.Block3FLOPs)
	}
	RegisterMessages()
	exec, err := NewExecutor(cfg.FLOPS, cfg.TimeScale)
	if err != nil {
		return nil, err
	}
	requests := cfg.Metrics.Counter("leime_cloud_requests_total", "Third-block continuations served.")
	sheds := cfg.Metrics.Counter("leime_cloud_deadline_shed_total", "Requests shed because their deadline passed (on arrival or while queued).")
	queueWait := cfg.Metrics.Histogram("leime_cloud_queue_wait_seconds", "Third-block wait before service (wall seconds).", nil)
	block3 := cfg.Metrics.Histogram("leime_cloud_block_seconds", "Block service time (wall seconds).", nil, telemetry.Label{Key: "block", Value: "3"})
	c := &Cloud{exec: exec}
	handler := func(ctx context.Context, meta rpc.Meta, body any) (any, error) {
		req, ok := body.(ThirdBlockReq)
		if !ok {
			return nil, fmt.Errorf("cloud: unexpected request %T", body)
		}
		requests.Inc()
		flops := req.FLOPs
		if flops <= 0 {
			flops = cfg.Block3FLOPs
		}
		wait, service, err := c.exec.DoTimedCtx(ctx, flops)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				sheds.Inc()
				return nil, fmt.Errorf("cloud: queued work shed: %w", rpc.ErrDeadlineExceeded)
			}
			return nil, err
		}
		queueWait.Observe(wait.Seconds())
		block3.Observe(service.Seconds())
		recordTimedSpans(cfg.Tracer, metaContext(meta), "cloud.queue", "cloud.block3", "", req.TaskID, wait, service)
		return TaskResp{TaskID: req.TaskID, ExitStage: 3}, nil
	}
	srv, err := rpc.ServeMeta(cfg.Addr, handler, rpc.WithShedHook(func() { sheds.Inc() }))
	if err != nil {
		exec.Close()
		return nil, err
	}
	c.srv = srv
	return c, nil
}

// Addr returns the cloud's listen address.
func (c *Cloud) Addr() string { return c.srv.Addr() }

// Pending returns the number of third-block jobs accepted but unfinished.
func (c *Cloud) Pending() int { return c.exec.Pending() }

// DeadlineSheds returns the number of requests the cloud's server shed on
// arrival because their propagated deadline had already passed.
func (c *Cloud) DeadlineSheds() uint64 { return c.srv.DeadlineSheds() }

// Close stops serving and releases the executor.
func (c *Cloud) Close() error {
	err := c.srv.Close()
	c.exec.Close()
	return err
}
