package runtime

import (
	"time"

	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// spanMeta converts an active span into the rpc envelope metadata that
// carries its context to the next tier. A nil span (tracing disabled)
// yields the zero, untraced Meta.
func spanMeta(a *telemetry.Active) rpc.Meta {
	c := a.Context()
	return rpc.Meta{TraceID: c.Trace, SpanID: c.Span}
}

// metaContext converts incoming rpc metadata into a span context.
func metaContext(m rpc.Meta) telemetry.SpanContext {
	return telemetry.SpanContext{Trace: m.TraceID, Span: m.SpanID}
}

// recordTimedSpans retroactively records a queue-wait span and a compute
// span under parent from executor timings: Executor.DoTimed reports (wait,
// service) and both spans end "now" on the tracer clock. Emitting after the
// fact keeps the executor hot path free of telemetry plumbing. Times are
// wall-clock seconds on the tracer clock (compressed by the run's
// TimeScale, like every testbed duration).
func recordTimedSpans(tr *telemetry.Tracer, parent telemetry.SpanContext, queueName, computeName, device string, task uint64, wait, service time.Duration) {
	if tr == nil || !parent.Valid() {
		return
	}
	end := tr.Now()
	serviceStart := end - service.Seconds()
	queueStart := serviceStart - wait.Seconds()
	tr.Record(telemetry.Span{
		Trace: parent.Trace, Span: tr.NewID(), Parent: parent.Span,
		Name: queueName, Device: device, Task: task,
		Start: queueStart, End: serviceStart,
	})
	tr.Record(telemetry.Span{
		Trace: parent.Trace, Span: tr.NewID(), Parent: parent.Span,
		Name: computeName, Device: device, Task: task,
		Start: serviceStart, End: end,
	})
}
