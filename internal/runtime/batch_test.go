package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"leime/internal/offload"
	"leime/internal/rpc"
)

// TestBatchConfigSemantics pins the knob semantics: what enables batching
// and how the amortized cost scales.
func TestBatchConfigSemantics(t *testing.T) {
	cases := []struct {
		cfg     BatchConfig
		enabled bool
	}{
		{BatchConfig{}, false},
		{BatchConfig{MaxSize: 1, MaxDelaySec: 1}, false},
		{BatchConfig{MaxSize: 8}, false},
		{BatchConfig{MaxSize: 8, MaxDelaySec: 0.01}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.enabled {
			t.Errorf("%+v Enabled() = %v, want %v", c.cfg, got, c.enabled)
		}
	}
	cfg := BatchConfig{MaxSize: 8, MaxDelaySec: 0.01}
	if got := cfg.AmortizedFLOPs(1e9, 1); got != 1e9 {
		t.Errorf("AmortizedFLOPs(1e9, 1) = %v, want 1e9", got)
	}
	// Default marginal 0.25: a batch of 5 costs 2x a lone job, not 5x.
	if got := cfg.AmortizedFLOPs(1e9, 5); got != 2e9 {
		t.Errorf("AmortizedFLOPs(1e9, 5) = %v, want 2e9", got)
	}
	cfg.Marginal = 1
	if got := cfg.AmortizedFLOPs(1e9, 5); got != 5e9 {
		t.Errorf("AmortizedFLOPs(marginal=1, 5) = %v, want 5e9", got)
	}
}

// TestExecutorBatchAmortizes submits co-arriving same-FLOPs jobs to a
// batching executor and checks they complete together in far less time
// than serial FIFO service would take.
func TestExecutorBatchAmortizes(t *testing.T) {
	const jobs = 8
	// One job burns 50ms; serial service of 8 takes 400ms. A full batch
	// burns 50ms*(1+7*0.25) = 87.5ms.
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{Batch: BatchConfig{MaxSize: jobs, MaxDelaySec: 0.2}}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	start := time.Now()
	var wg sync.WaitGroup
	services := make([]time.Duration, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, service, err := e.DoTimed(5e7)
			if err != nil {
				t.Errorf("DoTimed: %v", err)
			}
			services[i] = service
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Window (200ms) + amortized burn (87.5ms) plus slack; far under the
	// 400ms serial floor.
	if elapsed > 380*time.Millisecond {
		t.Errorf("batched completion took %v, want well under the 400ms serial floor", elapsed)
	}
	// All batched jobs observe the same service duration (they co-complete).
	for i := 1; i < jobs; i++ {
		if services[i] != services[0] {
			t.Errorf("service[%d] = %v != service[0] = %v (expected one shared batch burn)", i, services[i], services[0])
			break
		}
	}
}

// TestExecutorBatchPreservesClassSeparation checks that jobs of different
// FLOPs classes (different DNN blocks) never share a batch: a class change
// caps the open batch so FIFO order holds.
func TestExecutorBatchPreservesClassSeparation(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{Batch: BatchConfig{MaxSize: 8, MaxDelaySec: 0.05}}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	serviced := map[float64]time.Duration{}
	for _, flops := range []float64{2e7, 2e7, 4e7, 4e7} {
		wg.Add(1)
		go func(flops float64) {
			defer wg.Done()
			_, service, err := e.DoTimed(flops)
			if err != nil {
				t.Errorf("DoTimed: %v", err)
				return
			}
			mu.Lock()
			if prev, ok := serviced[flops]; !ok || service > prev {
				serviced[flops] = service
			}
			mu.Unlock()
		}(flops)
		time.Sleep(5 * time.Millisecond) // deterministic queue order
	}
	wg.Wait()
	// Classes were batched separately: each class's service reflects its
	// own amortized burn (2 jobs at marginal 0.25 = 1.25x a lone job), so
	// the 4e7 class must take measurably longer than the 2e7 class.
	if serviced[4e7] <= serviced[2e7] {
		t.Errorf("per-class service times not separated: 2e7 -> %v, 4e7 -> %v", serviced[2e7], serviced[4e7])
	}
}

// TestExecutorBatchWindowRespectsCancellation cancels a queued job while a
// batch window is open and checks it is dropped unburned while the rest of
// the batch completes.
func TestExecutorBatchWindowRespectsCancellation(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{Batch: BatchConfig{MaxSize: 4, MaxDelaySec: 0.25}}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	var cancelledErr error
	go func() {
		defer wg.Done()
		_, _, cancelledErr = e.DoTimedCtx(ctx, 5e7)
	}()
	go func() {
		defer wg.Done()
		if _, _, err := e.DoTimed(5e7); err != nil {
			t.Errorf("surviving job: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // both queued inside the open window
	cancel()
	wg.Wait()
	if !errors.Is(cancelledErr, context.Canceled) {
		t.Errorf("cancelled job returned %v, want context.Canceled", cancelledErr)
	}
}

// TestEdgeBatchingServesWorkload runs a real offloading workload against a
// batching edge and checks every task completes with no errors — batching
// must be behaviour-preserving at the protocol level.
func TestEdgeBatchingServesWorkload(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: cloud.Addr(),
		TimeScale: testScale,
		Policy:    ControlPolicy{Batch: BatchConfig{MaxSize: 8, MaxDelaySec: 0.05}},
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	t.Cleanup(func() { _ = edge.Close() })

	cfg := testDeviceConfig(edge.Addr(), "batch-dev")
	eOnly := offload.EdgeOnly()
	cfg.Policy = &eOnly
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Completed != stats.Generated || stats.Generated == 0 {
		t.Fatalf("conservation: generated %d, completed %d", stats.Generated, stats.Completed)
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d, want 0", stats.Errors)
	}
}

// TestOverloadedErrorCrossesWire checks the ErrOverloaded sentinel is
// registered with the rpc error-code registry so errors.Is classifies it on
// the device side of a connection.
func TestOverloadedErrorCrossesWire(t *testing.T) {
	RegisterMessages()
	srv, err := rpc.Serve("127.0.0.1:0", func(ctx context.Context, body any) (any, error) {
		return nil, ErrOverloaded
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	c, err := rpc.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), QueueStatReq{DeviceID: "x"})
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("remote error %v does not classify as ErrOverloaded", err)
	}
	if !backpressured(err) {
		t.Errorf("remote overload %v not recognized as backpressure", err)
	}
}
