package runtime

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"
	"time"

	"leime/internal/fleet"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
)

// testFleetConfig is a fast heartbeat cadence for compressed-time tests.
func testFleetConfig() fleet.Config {
	return fleet.Config{Every: 10 * time.Millisecond, SuspectAfter: 2}
}

// startFederatedEdge starts one edge with the given peers, registered for
// cleanup.
func startFederatedEdge(t *testing.T, cfg EdgeConfig) *Edge {
	t.Helper()
	e, err := StartEdge(cfg)
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// registerAt creates a tenancy for id at the edge through a raw client (the
// readiness protocol: an edge serves steal traffic only once its KKT
// allocation is warm).
func registerAt(t *testing.T, addr, id string) *rpc.Client {
	t.Helper()
	RegisterMessages()
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatalf("Dial %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if _, err := c.Call(context.Background(), RegisterReq{DeviceID: id, FLOPS: 1e9, ArrivalMean: 2}); err != nil {
		t.Fatalf("register %s at %s: %v", id, addr, err)
	}
	return c
}

// waitReadyPeers blocks until the edge's registry sees n ready peers.
func waitReadyPeers(t *testing.T, e *Edge, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(e.PeerRegistry().Ready()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("peer registry never saw %d ready peers (have %d)", n, len(e.PeerRegistry().Ready()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStealOneHopBound pins the structural one-hop property of work
// stealing: a saturated edge forwards rejected tasks to its peer, the peer
// executes them on spare capacity, and the stolen work is NEVER forwarded
// again — the peer's own peer sees zero steals, and an over-hop StealReq is
// rejected outright.
func TestStealOneHopBound(t *testing.T) {
	edgeC := startFederatedEdge(t, EdgeConfig{
		Addr: "127.0.0.1:0", FLOPS: 6e10, Model: testModel(), TimeScale: testScale,
	})
	edgeB := startFederatedEdge(t, EdgeConfig{
		Addr: "127.0.0.1:0", FLOPS: 6e10, Model: testModel(), TimeScale: testScale,
		Peers: []string{edgeC.Addr()}, Fleet: testFleetConfig(),
	})
	// A tiny per-tenant pending cap on a slow edge makes admission reject
	// most of the burst below, forcing the steal path.
	edgeA := startFederatedEdge(t, EdgeConfig{
		Addr: "127.0.0.1:0", FLOPS: 2e9, Model: testModel(), TimeScale: testScale,
		MaxPendingPerTenant: 1,
		Peers:               []string{edgeB.Addr()}, Fleet: testFleetConfig(),
	})

	// Warm every edge's allocation so the fleet readiness gate opens.
	registerAt(t, edgeC.Addr(), "res-c")
	registerAt(t, edgeB.Addr(), "res-b")
	src := registerAt(t, edgeA.Addr(), "src")
	waitReadyPeers(t, edgeA, 1)
	waitReadyPeers(t, edgeB, 1)

	// Burst concurrent first-block offloads at the saturated edge. Each
	// either runs at A, is stolen to B, or is rejected back to the caller —
	// but none may travel A -> B -> C.
	const burst = 24
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = src.Call(ctx, FirstBlockReq{DeviceID: "src", TaskID: uint64(i + 1), Payload: []byte{1}, ExitStage: 1})
		}(i)
	}
	wg.Wait()

	_, aOut, _ := edgeA.StealStats()
	bIn, bOut, _ := edgeB.StealStats()
	cIn, _, _ := edgeC.StealStats()
	if aOut == 0 {
		t.Fatal("saturated edge never attempted a steal; burst too lenient")
	}
	if bIn == 0 {
		t.Error("peer executed no stolen tasks")
	}
	if bOut != 0 {
		t.Errorf("peer re-stole %d received tasks; one-hop bound violated", bOut)
	}
	if cIn != 0 {
		t.Errorf("second-hop peer received %d steals; one-hop bound violated", cIn)
	}

	// The bound is also enforced on the wire: an over-hop StealReq is
	// rejected before any execution.
	raw, err := rpc.Dial(edgeB.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer raw.Close()
	_, err = raw.Call(context.Background(), StealReq{DeviceID: "src", TaskID: 999, ExitStage: 1, Hop: 2, Model: testModel()})
	if err == nil || !strings.Contains(err.Error(), "one-hop") {
		t.Errorf("Hop=2 steal not rejected: err=%v", err)
	}
	if cInAfter, _, _ := edgeC.StealStats(); cInAfter != 0 {
		t.Errorf("over-hop steal leaked %d tasks to the second peer", cInAfter)
	}
}

// TestFleetChaosKillOneOfThreeEdges is the federation chaos acceptance
// test: devices selecting over three edges lose one mid-run, must re-select
// a survivor (observable as migrations), never hang, and complete every
// generated task.
func TestFleetChaosKillOneOfThreeEdges(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr: "127.0.0.1:0", FLOPS: 2e12, Block3FLOPs: testModel().Mu[2], TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	defer cloud.Close()

	const edges = 3
	fleetEdges := make([]*Edge, edges)
	addrs := make([]string, edges)
	for i := 0; i < edges; i++ {
		e, err := StartEdge(EdgeConfig{
			Addr: "127.0.0.1:0", FLOPS: 6e10, Model: testModel(),
			CloudAddr: cloud.Addr(),
			CloudLink: netem.Link{BandwidthBps: 5e7, Latency: 10 * time.Millisecond},
			TimeScale: testScale,
		})
		if err != nil {
			t.Fatalf("StartEdge %d: %v", i, err)
		}
		fleetEdges[i] = e
		addrs[i] = e.Addr()
	}
	defer func() {
		for _, e := range fleetEdges {
			_ = e.Close()
		}
	}()

	const devices = 4
	type outcome struct {
		id    string
		stats *DeviceStats
		err   error
	}
	results := make(chan outcome, devices)
	homes := make(map[int]bool) // edge indices hosting at least one device
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("fchaos-%d", i)
		h := fnv.New32a()
		_, _ = h.Write([]byte(id))
		homes[int(h.Sum32()%edges)] = true
		go func(i int, id string) {
			cfg := testDeviceConfig("", id)
			cfg.EdgeAddrs = append([]string(nil), addrs...)
			cfg.Fleet = testFleetConfig()
			eOnly := offload.EdgeOnly()
			cfg.Policy = &eOnly // insist on offloading: only faults force local work
			cfg.ArrivalMean = 4
			cfg.Slots = 50
			cfg.AdaptEvery = 2
			cfg.Seed = int64(211 + i*7)
			cfg.Retry = rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 15 * time.Millisecond}
			cfg.Breaker = rpc.BreakerConfig{FailureThreshold: 3, Cooldown: 40 * time.Millisecond}
			stats, err := RunDevice(cfg)
			results <- outcome{id: id, stats: stats, err: err}
		}(i, id)
	}

	// Kill an edge that is actually somebody's home, while the run is hot,
	// and never bring it back: survivors must absorb the tenancies.
	victim := 0
	for i := 0; i < edges; i++ {
		if homes[i] {
			victim = i
			break
		}
	}
	time.Sleep(120 * time.Millisecond)
	if err := fleetEdges[victim].Close(); err != nil {
		t.Fatalf("killing edge %d: %v", victim, err)
	}

	migrations := 0
	for i := 0; i < devices; i++ {
		var got outcome
		select {
		case got = <-results:
		case <-time.After(60 * time.Second):
			t.Fatal("device run hung after edge kill")
		}
		if got.err != nil {
			t.Fatalf("device %s failed: %v", got.id, got.err)
		}
		if got.stats.Errors != 0 {
			t.Errorf("device %s: %d task errors", got.id, got.stats.Errors)
		}
		if got.stats.Completed != got.stats.Generated {
			t.Errorf("device %s: conservation %d != %d", got.id, got.stats.Completed, got.stats.Generated)
		}
		migrations += got.stats.Migrations
	}
	if migrations == 0 {
		t.Error("no device migrated off the killed edge")
	}
}
