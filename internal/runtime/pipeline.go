package runtime

import (
	"context"
	"errors"
	"fmt"

	"leime/internal/netem"
	"leime/internal/partition"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// Pipelined inference: a chain of edge workers each executes one layer
// range of the model and forwards the surviving task's activation to the
// next hop over the binary wire protocol. The chain is computed by
// internal/partition and installed stage by stage (StageInstallReq); tasks
// ride it as ActivationReqs whose replies relay back hop by hop, so the
// task source sees one synchronous call with the deadline and trace
// context of rpc.Meta covering every hop. Each stage burns its compute on
// an executor governed by the edge's ControlPolicy — a pipelined tenant
// consumes admission budget on every stage it crosses, and a stage that
// cannot accept the work backpressures the whole chain exactly like a
// single overloaded edge.

// PipelineStage is the runtime installation spec of one chain stage — the
// wire-level mirror of partition.Stage, carrying only what the executing
// worker needs.
type PipelineStage struct {
	// FLOPs[c] is the per-exit-class operation count of the stage.
	FLOPs [3]float64
	// Hosted[c] reports that exit class c+1 completes here.
	Hosted [3]bool
	// Deepest is the deepest exit class answerable from this stage (or an
	// earlier one) when the next hop is unreachable; 0 = none.
	Deepest int
	// OutBytes is the activation size forwarded downstream.
	OutBytes float64
}

// PipelineFromPlan converts a solved partition into installable stage
// specs, one per plan stage in chain order.
func PipelineFromPlan(p *partition.Plan) []PipelineStage {
	out := make([]PipelineStage, len(p.Stages))
	for i, st := range p.Stages {
		out[i] = PipelineStage{
			FLOPs:    st.FLOPs,
			Hosted:   st.Hosted,
			Deepest:  st.Deepest,
			OutBytes: st.OutBytes,
		}
	}
	return out
}

// pipeStage is the edge-side state of one installed stage: its spec and
// the lazily dialed client of the next hop (nil for the terminal stage).
type pipeStage struct {
	spec StageInstallReq
	next *rpc.ReliableClient
}

// stageInstall upserts one pipeline stage. A replaced stage's next-hop
// client is closed after the swap; in-flight activations racing the
// replacement finish on the client they captured.
func (e *Edge) stageInstall(req StageInstallReq) (any, error) {
	if req.PipelineID == "" {
		return nil, fmt.Errorf("edge: stage install needs a pipeline id")
	}
	if req.Stage < 0 || req.Deepest < 0 || req.Deepest > 3 {
		return nil, fmt.Errorf("edge: stage install %q: bad stage %d or deepest %d", req.PipelineID, req.Stage, req.Deepest)
	}
	var next *rpc.ReliableClient
	if req.NextAddr != "" {
		// The next-hop path is shaped by the edge's PeerLink (scaled like
		// every testbed link); the seed is deterministic per stage so
		// same-seed runs replay identical jitter.
		shaper, err := netem.NewShaper(scaleLink(e.cfg.PeerLink, e.cfg.TimeScale), 0x9e1e+int64(req.Stage))
		if err != nil {
			return nil, err
		}
		next = rpc.DialReliable(req.NextAddr, shaper, rpc.ReliableOptions{})
	}
	e.pipeMu.Lock()
	stages, ok := e.pipes[req.PipelineID]
	if !ok {
		stages = make(map[int]*pipeStage)
		e.pipes[req.PipelineID] = stages
	}
	old := stages[req.Stage]
	stages[req.Stage] = &pipeStage{spec: req, next: next}
	e.pipeMu.Unlock()
	if old != nil && old.next != nil {
		_ = old.next.Close()
	}
	return StageInstallResp{Stage: req.Stage}, nil
}

// pipelineStage looks up an installed stage.
func (e *Edge) pipelineStage(id string, stage int) (*pipeStage, error) {
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	st, ok := e.pipes[id][stage]
	if !ok {
		return nil, fmt.Errorf("%w (%q stage %d)", ErrUnknownPipeline, id, stage)
	}
	return st, nil
}

// activation executes one task's share of this stage and either answers
// from a hosted exit or forwards the next activation downstream, relaying
// the reply back. Failure semantics when the next hop cannot take the
// task: every classifier up to the stage's end has already run for this
// task, so the stage answers from its deepest hosted exit — an accuracy
// sacrifice, never a hang (the rpc deadline in meta bounds the forward) —
// and only errors out when no exit head has been computed yet.
func (e *Edge) activation(ctx context.Context, meta rpc.Meta, req ActivationReq) (any, error) {
	st, err := e.pipelineStage(req.PipelineID, req.Stage)
	if err != nil {
		return nil, err
	}
	if req.ExitStage < 1 || req.ExitStage > 3 {
		return nil, fmt.Errorf("edge: activation exit stage %d out of range", req.ExitStage)
	}
	wait, service, err := e.pipeExec.DoTimedCtx(ctx, st.spec.FLOPs[req.ExitStage-1])
	if err != nil {
		return nil, e.execErr(err)
	}
	e.tel.queueWait.Observe(wait.Seconds())
	e.tel.stage.Observe(service.Seconds())
	recordTimedSpans(e.tel.tracer, metaContext(meta), "edge.queue", fmt.Sprintf("edge.stage%d", req.Stage), req.DeviceID, req.TaskID, wait, service)
	if st.spec.Hosted[req.ExitStage-1] {
		return TaskResp{TaskID: req.TaskID, ExitStage: req.ExitStage}, nil
	}
	if st.next == nil {
		if st.spec.Deepest > 0 {
			e.tel.pipeDegraded.Inc()
			return TaskResp{TaskID: req.TaskID, ExitStage: st.spec.Deepest}, nil
		}
		return nil, fmt.Errorf("edge: pipeline %q stage %d hosts no exit for class %d and has no next hop",
			req.PipelineID, req.Stage, req.ExitStage)
	}
	var hopSpan *telemetry.Active
	if tctx := metaContext(meta); tctx.Valid() {
		hopSpan = e.tel.tracer.StartSpan(tctx, "rpc.stage").SetDevice(req.DeviceID).SetTask(req.TaskID)
	}
	got, err := st.next.CallMeta(ctx, spanMeta(hopSpan), ActivationReq{
		PipelineID: req.PipelineID,
		DeviceID:   req.DeviceID,
		TaskID:     req.TaskID,
		Stage:      req.Stage + 1,
		ExitStage:  req.ExitStage,
		Payload:    make([]byte, int(st.spec.OutBytes)),
	})
	if err != nil {
		// A dead, restarted or saturated next hop degrades the task to the
		// deepest exit this stage (or an earlier one) already computed.
		// Deadline-infeasible is not degradable: the budget is blown either
		// way, so the typed reason propagates to the source (it unwraps to
		// ErrOverloaded, hence the explicit check before the classifiers).
		if !errors.Is(err, ErrDeadlineInfeasible) && (degradable(err) || errors.Is(err, ErrUnknownPipeline) || backpressured(err)) && st.spec.Deepest > 0 {
			hopSpan.SetNote("degraded: " + err.Error()).End()
			e.tel.pipeDegraded.Inc()
			return TaskResp{TaskID: req.TaskID, ExitStage: st.spec.Deepest}, nil
		}
		hopSpan.End()
		return nil, fmt.Errorf("edge: pipeline forward: %w", err)
	}
	hopSpan.End()
	resp, ok := got.(TaskResp)
	if !ok {
		return nil, fmt.Errorf("edge: unexpected stage reply %T", got)
	}
	return resp, nil
}

// closePipelines releases every next-hop client; called from Edge.Close.
func (e *Edge) closePipelines() {
	e.pipeMu.Lock()
	defer e.pipeMu.Unlock()
	for _, stages := range e.pipes {
		for _, st := range stages {
			if st.next != nil {
				_ = st.next.Close()
			}
		}
	}
	e.pipes = make(map[string]map[int]*pipeStage)
}

// InstallPipeline pushes one stage spec per address, last stage first so
// every NextAddr points at an already-installed stage by the time traffic
// can reach it. The control connections are unshaped and closed before
// returning; installs are idempotent, so re-running after a worker restart
// repairs the chain.
func InstallPipeline(ctx context.Context, id string, addrs []string, stages []PipelineStage) error {
	if id == "" {
		return fmt.Errorf("runtime: pipeline needs an id")
	}
	if len(addrs) == 0 || len(addrs) != len(stages) {
		return fmt.Errorf("runtime: pipeline %q: %d addresses for %d stages", id, len(addrs), len(stages))
	}
	RegisterMessages()
	for j := len(addrs) - 1; j >= 0; j-- {
		next := ""
		if j+1 < len(addrs) {
			next = addrs[j+1]
		}
		c := rpc.DialReliable(addrs[j], nil, rpc.ReliableOptions{})
		_, err := c.Call(ctx, StageInstallReq{
			PipelineID: id,
			Stage:      j,
			FLOPs:      stages[j].FLOPs,
			Hosted:     stages[j].Hosted,
			Deepest:    stages[j].Deepest,
			OutBytes:   stages[j].OutBytes,
			NextAddr:   next,
		})
		_ = c.Close()
		if err != nil {
			return fmt.Errorf("runtime: install pipeline %q stage %d at %s: %w", id, j, addrs[j], err)
		}
	}
	return nil
}

// PipelineClientConfig configures a task source driving an installed
// pipeline.
type PipelineClientConfig struct {
	// Addr is the first stage's edge address.
	Addr string
	// PipelineID names the installed chain.
	PipelineID string
	// DeviceID identifies the source in traces and stage telemetry.
	DeviceID string
	// InputBytes is the raw task input size (d_0).
	InputBytes float64
	// Uplink shapes the source-to-first-stage path.
	Uplink netem.Link
	// TimeScale compresses testbed time, exactly like every other tier.
	TimeScale Scale
	// Seed drives the uplink shaper's jitter.
	Seed int64
	// Retry and Breaker tune the reliability layer (zero values = rpc
	// defaults). Activations are not idempotent, so Retry only governs
	// control-plane traffic on this connection.
	Retry   rpc.RetryPolicy
	Breaker rpc.BreakerConfig
}

// PipelineClient issues tasks into a pipeline chain and reports their
// final exits. It is safe for concurrent use.
type PipelineClient struct {
	cfg PipelineClientConfig
	c   *rpc.ReliableClient
}

// DialPipeline builds the client; the connection is established lazily.
func DialPipeline(cfg PipelineClientConfig) (*PipelineClient, error) {
	if cfg.Addr == "" || cfg.PipelineID == "" {
		return nil, fmt.Errorf("runtime: pipeline client needs an address and a pipeline id")
	}
	RegisterMessages()
	shaper, err := netem.NewShaper(scaleLink(cfg.Uplink, cfg.TimeScale), cfg.Seed^0x91e)
	if err != nil {
		return nil, err
	}
	return &PipelineClient{
		cfg: cfg,
		c:   rpc.DialReliable(cfg.Addr, shaper, rpc.ReliableOptions{Retry: cfg.Retry, Breaker: cfg.Breaker, Seed: cfg.Seed ^ 0x91e7}),
	}, nil
}

// Do runs one task of the given predetermined exit class through the chain
// and returns where it actually exited (which may be shallower than asked
// when a mid-chain stage degraded it).
func (pc *PipelineClient) Do(ctx context.Context, taskID uint64, exitStage int) (TaskResp, error) {
	got, err := pc.c.CallMeta(ctx, rpc.Meta{}, ActivationReq{
		PipelineID: pc.cfg.PipelineID,
		DeviceID:   pc.cfg.DeviceID,
		TaskID:     taskID,
		Stage:      0,
		ExitStage:  exitStage,
		Payload:    make([]byte, int(pc.cfg.InputBytes)),
	})
	if err != nil {
		return TaskResp{}, err
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return TaskResp{}, fmt.Errorf("runtime: unexpected pipeline reply %T", got)
	}
	return resp, nil
}

// DoMeta is Do with caller-supplied metadata (trace context; the deadline
// field is still filled from ctx by the rpc layer).
func (pc *PipelineClient) DoMeta(ctx context.Context, meta rpc.Meta, taskID uint64, exitStage int) (TaskResp, error) {
	got, err := pc.c.CallMeta(ctx, meta, ActivationReq{
		PipelineID: pc.cfg.PipelineID,
		DeviceID:   pc.cfg.DeviceID,
		TaskID:     taskID,
		ExitStage:  exitStage,
		Payload:    make([]byte, int(pc.cfg.InputBytes)),
	})
	if err != nil {
		return TaskResp{}, err
	}
	resp, ok := got.(TaskResp)
	if !ok {
		return TaskResp{}, fmt.Errorf("runtime: unexpected pipeline reply %T", got)
	}
	return resp, nil
}

// Close releases the connection.
func (pc *PipelineClient) Close() error { return pc.c.Close() }
