package runtime

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leime/internal/offload"
	"leime/internal/rpc"
)

// TestExecutorEDFServesEarliestDeadlineFirst parks a blocker on the server,
// enqueues contenders whose deadlines are a random permutation of their
// submission order, and checks the observed waits sort by deadline: the job
// with the k-th earliest deadline waits k service times, regardless of when
// it arrived. Under FIFO the waits would sort by submission order instead.
func TestExecutorEDFServesEarliestDeadlineFirst(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{EDF: true}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	// The blocker carries the earliest deadline of all, so EDF serves it
	// first even if the dispatcher has not claimed it yet when the
	// contenders arrive — the ordering below cannot race on its start.
	base := time.Now().Add(30 * time.Second)
	var blockWG sync.WaitGroup
	blockWG.Add(1)
	go func() {
		defer blockWG.Done()
		ctx, cancel := context.WithDeadline(context.Background(), base.Add(-time.Second))
		defer cancel()
		if _, _, err := e.DoTimedCtx(ctx, 5e8); err != nil { // 500ms of service
			t.Errorf("blocker: %v", err)
		}
	}()
	admitBy := time.Now().Add(2 * time.Second)
	for e.Pending() == 0 {
		if time.Now().After(admitBy) {
			t.Fatal("blocker never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	const (
		n      = 12
		perJob = 8e6 // 8ms at 1e9 FLOPS: one rank step in the wait ladder
	)
	// perm[i] is job i's deadline rank: rank 0 has the earliest deadline.
	perm := rand.New(rand.NewSource(42)).Perm(n)
	waits := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithDeadline(context.Background(),
				base.Add(time.Duration(perm[i])*time.Second))
			defer cancel()
			wait, _, err := e.DoTimedCtx(ctx, perJob)
			if err != nil {
				t.Errorf("contender %d: %v", i, err)
			}
			waits[i] = wait
		}(i)
	}
	// Every contender must be queued while the blocker still runs, or the
	// ordering claim below is vacuous.
	enqBy := time.Now().Add(400 * time.Millisecond)
	for e.Pending() < n+1 {
		if time.Now().After(enqBy) {
			t.Fatal("contenders failed to enqueue while the blocker ran")
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	blockWG.Wait()

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if perm[i] < perm[j] && waits[i] > waits[j]+4*time.Millisecond {
				t.Errorf("EDF inversion: rank %d waited %v, rank %d waited %v",
					perm[i], waits[i], perm[j], waits[j])
			}
		}
	}
}

// TestExecutorEDFConcurrentStress hammers an EDF executor from many
// goroutines mixing deadline and no-deadline jobs, cancellations, rate
// changes and stat reads. Under -race this is the memory-safety proof of
// the sorted-insert enqueue path; the assertions check conservation.
func TestExecutorEDFConcurrentStress(t *testing.T) {
	e, err := NewExecutor(1e9, 0.001, WithPolicy(ControlPolicy{
		EDF:           true,
		MaxBacklogSec: 5,
	}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	classes := []float64{1e7, 2e7, 3e7}
	const (
		workers  = 8
		jobsPerW = 25
	)
	var completed, cancelled, rejected, closedErr atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < jobsPerW; i++ {
				flops := classes[rng.Intn(len(classes))]
				ctx := context.Background()
				var cancel context.CancelFunc
				switch i % 3 {
				case 0: // deadline job: exercises the sorted insert
					ctx, cancel = context.WithDeadline(ctx,
						time.Now().Add(time.Duration(1+rng.Intn(2000))*time.Millisecond+10*time.Second))
				case 1: // cancelled while queued
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(200)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				_, _, err := e.DoTimedCtx(ctx, flops)
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, context.Canceled):
					cancelled.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, ErrExecutorClosed):
					closedErr.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
				if cancel != nil {
					cancel()
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.SetRate(1e9 + float64(i%7)*1e8); err != nil {
				t.Errorf("SetRate: %v", err)
			}
			_ = e.Pending()
			_ = e.PredictedWaitSec()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	ctlWG.Wait()
	e.Close()

	total := completed.Load() + cancelled.Load() + rejected.Load() + closedErr.Load()
	if total != workers*jobsPerW {
		t.Errorf("conservation: %d outcomes for %d jobs", total, workers*jobsPerW)
	}
	if completed.Load() == 0 {
		t.Error("no job completed")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending after drain = %d, want 0", got)
	}
}

// TestDeadlineAdmissionRejectsInfeasible checks the admission quote: a job
// whose service time alone exceeds its context deadline is refused with
// ErrDeadlineInfeasible — which classifies as ErrOverloaded but not as the
// capacity reason.
func TestDeadlineAdmissionRejectsInfeasible(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{DeadlineAdmission: true}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err = e.DoTimedCtx(ctx, 1e9) // 1s of service against a 100ms deadline
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("err = %v, want ErrDeadlineInfeasible", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("ErrDeadlineInfeasible must classify as ErrOverloaded")
	}
	if errors.Is(err, ErrOverloadCapacity) {
		t.Errorf("deadline rejection must not classify as the capacity reason")
	}
	// A feasible job on the same executor is admitted.
	if _, _, err := e.DoTimedCtx(ctx, 1e6); err != nil {
		t.Errorf("feasible job rejected: %v", err)
	}
}

// TestPredictorCalibratesOnExecutor trains the admission predictor with a
// stream of deadline-carrying jobs, then checks the quote against a known
// queue state: with a 100ms blocker holding the server, the predicted wait
// for the next arrival must bracket the observed wait within a small
// factor, and the learned bias must sit inside its clamp.
func TestPredictorCalibratesOnExecutor(t *testing.T) {
	e, err := NewExecutor(1e9, 1, WithPolicy(ControlPolicy{DeadlineAdmission: true}))
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	defer e.Close()

	// Training: 40 jobs, 4 concurrent submitters, generous deadlines so
	// admission always passes and every completion feeds Observe.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if _, _, err := e.DoTimedCtx(ctx, 2e7); err != nil {
					t.Errorf("training job: %v", err)
				}
				cancel()
			}
		}()
	}
	wg.Wait()

	if bias := e.PredictedWaitSec(); bias != 0 {
		t.Errorf("drained executor quotes wait %v, want 0", bias)
	}

	// Measurement: blocker occupies the server; the quote for an arrival
	// now must match the wait that arrival actually observes.
	var blockWG sync.WaitGroup
	blockWG.Add(1)
	go func() {
		defer blockWG.Done()
		if err := e.Do(1e8); err != nil { // 100ms
			t.Errorf("blocker: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for e.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	predicted := e.PredictedWaitSec()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait, _, err := e.DoTimedCtx(ctx, 1e6)
	blockWG.Wait()
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	observed := wait.Seconds()
	if predicted <= 0 {
		t.Fatalf("predicted wait %v behind a 100ms blocker, want > 0", predicted)
	}
	if observed < predicted/4 || observed > predicted*4 {
		t.Errorf("calibration: predicted %.3fs vs observed %.3fs (want within 4x)", predicted, observed)
	}
}

// TestOverloadReasonsCrossWire checks both refined overload sentinels
// survive the rpc error-code registry: the device side distinguishes
// deadline-infeasible (shed now) from capacity (fall back locally), and
// both still classify as the ErrOverloaded family.
func TestOverloadReasonsCrossWire(t *testing.T) {
	RegisterMessages()
	for _, tc := range []struct {
		name     string
		sentinel error
		other    error
	}{
		{"deadline", ErrDeadlineInfeasible, ErrOverloadCapacity},
		{"capacity", ErrOverloadCapacity, ErrDeadlineInfeasible},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := rpc.Serve("127.0.0.1:0", func(ctx context.Context, body any) (any, error) {
				return nil, tc.sentinel
			})
			if err != nil {
				t.Fatalf("Serve: %v", err)
			}
			defer srv.Close()
			c, err := rpc.Dial(srv.Addr(), nil)
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			_, err = c.Call(context.Background(), QueueStatReq{DeviceID: "x"})
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("remote %v does not classify as the %s reason", err, tc.name)
			}
			if errors.Is(err, tc.other) {
				t.Errorf("remote %v classifies as BOTH overload reasons", err)
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Errorf("remote %v lost the ErrOverloaded family", err)
			}
		})
	}
}

// TestDeviceShedsDeadlineInfeasibleTasks drives a device with a tight task
// deadline against an edge so slow that deadline admission refuses every
// first block. The refusals must surface as deadline misses — shed now —
// not as local fallbacks: re-running a deadline-doomed task on the slower
// device CPU would only burn cycles past the deadline.
func TestDeviceShedsDeadlineInfeasibleTasks(t *testing.T) {
	edge, err := StartEdge(EdgeConfig{
		Addr:  "127.0.0.1:0",
		FLOPS: 2e7, // block 1 alone needs 10 model-seconds
		Model: testModel(),
		Policy: ControlPolicy{
			DeadlineAdmission: true,
		},
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	cfg := testDeviceConfig(edge.Addr(), "deadliner")
	eOnly := offload.EdgeOnly()
	cfg.Policy = &eOnly // insist on offloading so admission must decide
	cfg.TaskDeadlineSec = 5
	cfg.Slots = 20
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.DeadlineMisses == 0 {
		t.Error("deadline admission never shed; test configuration too lenient")
	}
	if stats.Fallbacks != 0 {
		t.Errorf("deadline-infeasible misclassified as backpressure: %d fallbacks", stats.Fallbacks)
	}
	if stats.Degraded != 0 {
		t.Errorf("deadline-infeasible misclassified as unreachability: %d degraded", stats.Degraded)
	}
	if stats.Completed != stats.Generated {
		t.Errorf("conservation: completed %d != generated %d", stats.Completed, stats.Generated)
	}
}
