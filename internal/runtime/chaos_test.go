package runtime

import (
	"fmt"
	"testing"
	"time"

	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/telemetry"
)

// chaosEdgeConfig is the edge used by the kill/restart test; metrics land in
// reg so the test can observe whether offloading actually reached this edge
// instance.
func chaosEdgeConfig(addr, cloudAddr string, reg *telemetry.Registry) EdgeConfig {
	return EdgeConfig{
		Addr:      addr,
		FLOPS:     6e10,
		Model:     testModel(),
		CloudAddr: cloudAddr,
		CloudLink: netem.Link{BandwidthBps: 5e7, Latency: 10 * time.Millisecond},
		TimeScale: testScale,
		Metrics:   reg,
	}
}

// TestEdgeKilledMidRunDevicesDegradeAndRecover is the chaos acceptance test:
// four offloading devices lose their edge mid-run, must not hang or error,
// degrade to device-only execution while the breaker is open, and resume
// offloading after the edge restarts on the same address.
func TestEdgeKilledMidRunDevicesDegradeAndRecover(t *testing.T) {
	cloud, err := StartCloud(CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   testScale,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	defer cloud.Close()

	edge1, err := StartEdge(chaosEdgeConfig("127.0.0.1:0", cloud.Addr(), nil))
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	addr := edge1.Addr()

	// All four devices share one registry so the run can be audited through
	// telemetry counters, exactly as an operator would.
	devReg := telemetry.NewRegistry()
	const devices = 4
	type outcome struct {
		id    string
		stats *DeviceStats
		err   error
	}
	results := make(chan outcome, devices)
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		go func(i int, id string) {
			cfg := testDeviceConfig(addr, id)
			eOnly := offload.EdgeOnly()
			cfg.Policy = &eOnly // insist on offloading: only faults force local work
			cfg.ArrivalMean = 4
			cfg.Slots = 50
			cfg.AdaptEvery = 2 // control-plane heartbeat doubles as breaker probe
			cfg.Seed = int64(101 + i*7)
			cfg.Retry = rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 15 * time.Millisecond}
			cfg.Breaker = rpc.BreakerConfig{FailureThreshold: 3, Cooldown: 40 * time.Millisecond}
			cfg.Metrics = devReg
			stats, err := RunDevice(cfg)
			results <- outcome{id: id, stats: stats, err: err}
		}(i, id)
	}

	// Kill the edge while every device is offloading, then restart it on the
	// SAME address well before the run ends.
	time.Sleep(120 * time.Millisecond)
	if err := edge1.Close(); err != nil {
		t.Fatalf("killing edge: %v", err)
	}
	time.Sleep(115 * time.Millisecond)
	edgeReg := telemetry.NewRegistry()
	var edge2 *Edge
	for attempt := 0; ; attempt++ {
		edge2, err = StartEdge(chaosEdgeConfig(addr, cloud.Addr(), edgeReg))
		if err == nil {
			break
		}
		if attempt >= 20 {
			t.Fatalf("restarting edge on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer edge2.Close()

	// Zero hangs: every device must come back on its own.
	for i := 0; i < devices; i++ {
		var got outcome
		select {
		case got = <-results:
		case <-time.After(60 * time.Second):
			t.Fatal("device run hung after edge kill/restart")
		}
		if got.err != nil {
			t.Fatalf("device %s failed: %v", got.id, got.err)
		}
		s := got.stats
		if s.Completed != s.Generated {
			t.Errorf("%s: completed %d of %d tasks", got.id, s.Completed, s.Generated)
		}
		if s.Errors != 0 {
			t.Errorf("%s: %d task errors; faults must degrade, not fail", got.id, s.Errors)
		}
		if s.Degraded == 0 {
			t.Errorf("%s: no degraded tasks despite the blackout", got.id)
		}
		if s.BreakerOpens == 0 {
			t.Errorf("%s: breaker never opened during the blackout", got.id)
		}
	}

	// The same story must be visible through telemetry: breaker transitions
	// and degraded-task counts per device, and the breaker closed again by
	// the end of the run.
	for i := 0; i < devices; i++ {
		dev := telemetry.Label{Key: "device", Value: fmt.Sprintf("chaos-%d", i)}
		if opens := devReg.Counter("leime_breaker_opens_total", "", dev).Value(); opens == 0 {
			t.Errorf("telemetry: chaos-%d breaker_opens_total = 0", i)
		}
		if degraded := devReg.Counter("leime_tasks_degraded_total", "", dev).Value(); degraded == 0 {
			t.Errorf("telemetry: chaos-%d tasks_degraded_total = 0", i)
		}
		if state := devReg.Gauge("leime_breaker_state", "", dev).Value(); state != float64(rpc.BreakerClosed) {
			t.Errorf("telemetry: chaos-%d ended with breaker state %v, want closed", i, state)
		}
	}

	// Offloading resumed against the restarted edge: its (fresh) request
	// counters saw real task traffic, not just control-plane probes.
	first := edgeReg.Counter("leime_edge_requests_total", "", telemetry.Label{Key: "type", Value: "first_block"}).Value()
	if first == 0 {
		t.Error("no first-block requests reached the restarted edge; offloading never resumed")
	}
}
