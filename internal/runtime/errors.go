package runtime

import (
	"errors"
	"fmt"

	"leime/internal/rpc"
)

// Typed sentinel errors for the runtime's application-level failures.
// They are registered with the rpc layer so errors.Is classifies them on
// the caller side of a connection exactly like locally produced errors.
var (
	// ErrBusy marks an offload the edge rejected with admission control:
	// the device's first-block backlog hit its cap. Devices fall back to
	// local execution instead of piling onto a saturated edge.
	ErrBusy = errors.New(BusyMessage)
	// ErrUnknownDevice marks requests for a device the edge has no tenant
	// state for — the normal outcome after an edge restart, which the
	// device's reconnect hook repairs by re-registering.
	ErrUnknownDevice = errors.New("edge: unknown device")
	// ErrOverloaded marks work rejected by admission control. The work
	// never started; how the device should react depends on the reason,
	// which crosses the wire as one of the two typed refinements below
	// (both unwrap to this sentinel, so errors.Is(err, ErrOverloaded)
	// still classifies the whole family).
	ErrOverloaded = errors.New("runtime: overloaded: admission rejected the task")
	// ErrOverloadCapacity is the capacity reason: accepting the task would
	// push a bounded queue past its backlog budget
	// (ControlPolicy.MaxBacklogSec, seconds of work derived from the
	// node's FLOPS rating). The server is saturated but the task itself is
	// fine — the device treats it as a degrade-to-local signal and re-runs
	// the blocks on its own CPU instead of retrying against a saturated
	// server.
	ErrOverloadCapacity = fmt.Errorf("%w: backlog budget exhausted", ErrOverloaded)
	// ErrDeadlineInfeasible is the deadline reason: deadline admission
	// (ControlPolicy.DeadlineAdmission) predicted that queueing wait plus
	// service cannot fit the deadline the task carries in rpc.Meta. The
	// task's budget is already as good as blown, so the device sheds it
	// immediately — burning local CPU on a result that will arrive late
	// anyway would only steal capacity from tasks that can still make it.
	ErrDeadlineInfeasible = fmt.Errorf("%w: predicted completion misses the task deadline", ErrOverloaded)
	// ErrUnknownPipeline marks an activation for a (pipeline, stage) the
	// edge has no installed state for — the normal outcome after a worker
	// restart, repaired by re-pushing the chain (stage installs are
	// idempotent upserts). Upstream stages treat it like an unreachable
	// next hop and degrade to their deepest hosted exit.
	ErrUnknownPipeline = errors.New("edge: unknown pipeline stage")
)

func init() {
	rpc.RegisterError("runtime/busy", ErrBusy)
	rpc.RegisterError("runtime/unknown-device", ErrUnknownDevice)
	rpc.RegisterError("runtime/overloaded", ErrOverloaded)
	// The reason refinements must sort lexicographically before
	// "runtime/overloaded": codeFor resolves an error matching several
	// sentinels to the smallest code, and each refinement matches its own
	// code plus the generic one ('-' < 'e', so "overload-..." wins).
	rpc.RegisterError("runtime/overload-capacity", ErrOverloadCapacity)
	rpc.RegisterError("runtime/overload-deadline", ErrDeadlineInfeasible)
	// A shutdown race can surface the executor's closed state from a
	// handler mid-drain; without a code it would reach the device untyped.
	rpc.RegisterError("runtime/executor-closed", ErrExecutorClosed)
	rpc.RegisterError("runtime/unknown-pipeline", ErrUnknownPipeline)
}
