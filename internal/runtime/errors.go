package runtime

import (
	"errors"

	"leime/internal/rpc"
)

// Typed sentinel errors for the runtime's application-level failures.
// They are registered with the rpc layer so errors.Is classifies them on
// the caller side of a connection exactly like locally produced errors.
var (
	// ErrBusy marks an offload the edge rejected with admission control:
	// the device's first-block backlog hit its cap. Devices fall back to
	// local execution instead of piling onto a saturated edge.
	ErrBusy = errors.New(BusyMessage)
	// ErrUnknownDevice marks requests for a device the edge has no tenant
	// state for — the normal outcome after an edge restart, which the
	// device's reconnect hook repairs by re-registering.
	ErrUnknownDevice = errors.New("edge: unknown device")
	// ErrOverloaded marks work rejected by admission control: accepting it
	// would push a bounded queue past its backlog budget (seconds of work
	// derived from the node's FLOPS rating), so the server refuses rather
	// than queueing without bound. The work never started, so the device
	// side treats it as a degrade-to-local signal: re-run the blocks on the
	// device instead of retrying against a saturated server.
	ErrOverloaded = errors.New("runtime: overloaded: admission backlog budget exceeded")
)

func init() {
	rpc.RegisterError("runtime/busy", ErrBusy)
	rpc.RegisterError("runtime/unknown-device", ErrUnknownDevice)
	rpc.RegisterError("runtime/overloaded", ErrOverloaded)
	// A shutdown race can surface the executor's closed state from a
	// handler mid-drain; without a code it would reach the device untyped.
	rpc.RegisterError("runtime/executor-closed", ErrExecutorClosed)
}
