package runtime

import (
	"errors"

	"leime/internal/rpc"
)

// Typed sentinel errors for the runtime's application-level failures.
// They are registered with the rpc layer so errors.Is classifies them on
// the caller side of a connection exactly like locally produced errors.
var (
	// ErrBusy marks an offload the edge rejected with admission control:
	// the device's first-block backlog hit its cap. Devices fall back to
	// local execution instead of piling onto a saturated edge.
	ErrBusy = errors.New(BusyMessage)
	// ErrUnknownDevice marks requests for a device the edge has no tenant
	// state for — the normal outcome after an edge restart, which the
	// device's reconnect hook repairs by re-registering.
	ErrUnknownDevice = errors.New("edge: unknown device")
)

func init() {
	rpc.RegisterError("runtime/busy", ErrBusy)
	rpc.RegisterError("runtime/unknown-device", ErrUnknownDevice)
}
