package runtime

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"leime/internal/model"
	"leime/internal/netem"
	"leime/internal/partition"
	"leime/internal/sim"
)

// pipeTestNet builds the resnet-34 MEDNN the pipeline differential runs on.
func pipeTestNet(t *testing.T) *model.MEDNN {
	t.Helper()
	p := model.ResNet34()
	m := p.NumExits()
	sigma := make([]float64, m)
	for i := range sigma {
		switch {
		case i+1 >= m:
			sigma[i] = 1
		case i+1 >= 11:
			sigma[i] = 0.8
		case i+1 >= 5:
			sigma[i] = 0.4
		}
	}
	n, err := model.NewMEDNN(p, 5, 11, sigma)
	if err != nil {
		t.Fatalf("NewMEDNN: %v", err)
	}
	return n
}

// pipeTestChain mirrors three weak edge workers: the links are the netem
// shapes the runtime edges are configured with below.
func pipeTestChain() partition.Chain {
	return partition.Chain{
		Workers: []partition.Worker{{FLOPS: 1.5e9}, {FLOPS: 1.5e9}, {FLOPS: 2e9}},
		Hops: []partition.Hop{
			{BandwidthBps: 80e6, LatencySec: 0.004},
			{BandwidthBps: 200e6, LatencySec: 0.002},
			{BandwidthBps: 200e6, LatencySec: 0.002},
		},
	}
}

// startPipelineEdges launches one edge per chain worker and installs the
// given cut as a pipeline across them, returning the stage addresses.
func startPipelineEdges(t *testing.T, chain partition.Chain, plan *partition.Plan, scale Scale) []string {
	t.Helper()
	peer := netem.Link{BandwidthBps: 200e6, Latency: 2 * time.Millisecond}
	addrs := make([]string, len(plan.Stages))
	for j := range plan.Stages {
		edge, err := StartEdge(EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     chain.Workers[plan.Stages[j].Worker].FLOPS,
			Model:     testModel(),
			TimeScale: scale,
			PeerLink:  peer,
		})
		if err != nil {
			t.Fatalf("StartEdge %d: %v", j, err)
		}
		t.Cleanup(func() { _ = edge.Close() })
		addrs[j] = edge.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := InstallPipeline(ctx, "diff", addrs, PipelineFromPlan(plan)); err != nil {
		t.Fatalf("InstallPipeline: %v", err)
	}
	return addrs
}

// TestPipelineRuntimeMatchesSolverAndSim is the three-substrate
// differential: the same three-stage cut is priced analytically
// (partition.Evaluate), replayed on the event simulator, and executed for
// real over loopback TCP; the runtime's per-class latency must land within
// a generous tolerance of both model substrates (which pin each other
// exactly — see internal/sim).
func TestPipelineRuntimeMatchesSolverAndSim(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second loopback differential")
	}
	net := pipeTestNet(t)
	chain := pipeTestChain()
	cuts := []int{net.E1, net.E2, net.Profile.NumExits()}
	plan, err := partition.Evaluate(partition.Config{Net: net, Chain: chain}, cuts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	simRes, err := sim.RunPipeline(sim.PipelineConfig{
		Net: net, Chain: chain, Cuts: cuts,
		Arrivals: []sim.PipeArrival{{AtSec: 0, Class: 1}, {AtSec: 1000, Class: 2}, {AtSec: 2000, Class: 3}},
	})
	if err != nil {
		t.Fatalf("sim.RunPipeline: %v", err)
	}

	const scale Scale = 0.02
	addrs := startPipelineEdges(t, chain, plan, scale)
	pc, err := DialPipeline(PipelineClientConfig{
		Addr:       addrs[0],
		PipelineID: "diff",
		DeviceID:   "diff-dev",
		InputBytes: net.Profile.DataBytes(0),
		Uplink:     netem.Link{BandwidthBps: 80e6, Latency: 4 * time.Millisecond},
		TimeScale:  scale,
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("DialPipeline: %v", err)
	}
	defer pc.Close()

	// One untimed full-depth task establishes every hop's connection so
	// the timed tasks measure the chain, not the dials.
	warmCtx, warmCancel := context.WithTimeout(context.Background(), 30*time.Second)
	if _, err := pc.Do(warmCtx, 1, 3); err != nil {
		warmCancel()
		t.Fatalf("warmup: %v", err)
	}
	warmCancel()

	const perClass = 3
	taskID := uint64(1)
	for class := 1; class <= 3; class++ {
		var total float64
		for i := 0; i < perClass; i++ {
			taskID++
			start := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			resp, err := pc.Do(ctx, taskID, class)
			cancel()
			if err != nil {
				t.Fatalf("class %d task %d: %v", class, i, err)
			}
			if resp.ExitStage != class {
				t.Fatalf("class %d task %d exited at %d", class, i, resp.ExitStage)
			}
			total += scale.ModelSeconds(time.Since(start))
		}
		got := total / perClass
		for _, ref := range []struct {
			name string
			want float64
		}{
			{"solver", plan.ClassLatencySec[class-1]},
			{"sim", simRes.ClassTCT[class-1].Mean()},
		} {
			if rel := math.Abs(got-ref.want) / ref.want; rel > 0.25 {
				t.Errorf("class %d: runtime %.4fs vs %s %.4fs (%.0f%% off)", class, got, ref.name, ref.want, rel*100)
			}
		}
	}
}

// TestPipelineChaosMidChainKill closes the middle stage's edge while the
// chain is serving: deep tasks must come back degraded to stage 0's hosted
// exit — an accuracy sacrifice, never an error and never a hang — and
// re-installing the chain on a replacement worker repairs full-depth
// service.
func TestPipelineChaosMidChainKill(t *testing.T) {
	net := pipeTestNet(t)
	chain := pipeTestChain()
	cuts := []int{net.E1, net.E2, net.Profile.NumExits()}
	plan, err := partition.Evaluate(partition.Config{Net: net, Chain: chain}, cuts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	const scale Scale = 0.02
	peer := netem.Link{BandwidthBps: 200e6, Latency: 2 * time.Millisecond}
	edges := make([]*Edge, len(plan.Stages))
	addrs := make([]string, len(plan.Stages))
	for j := range plan.Stages {
		edge, err := StartEdge(EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     chain.Workers[j].FLOPS,
			Model:     testModel(),
			TimeScale: scale,
			PeerLink:  peer,
		})
		if err != nil {
			t.Fatalf("StartEdge %d: %v", j, err)
		}
		t.Cleanup(func() { _ = edge.Close() })
		edges[j] = edge
		addrs[j] = edge.Addr()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := InstallPipeline(ctx, "chaos", addrs, PipelineFromPlan(plan)); err != nil {
		t.Fatalf("InstallPipeline: %v", err)
	}
	pc, err := DialPipeline(PipelineClientConfig{
		Addr:       addrs[0],
		PipelineID: "chaos",
		DeviceID:   "chaos-dev",
		InputBytes: net.Profile.DataBytes(0),
		Uplink:     netem.Link{BandwidthBps: 80e6, Latency: 4 * time.Millisecond},
		TimeScale:  scale,
		Seed:       5,
	})
	if err != nil {
		t.Fatalf("DialPipeline: %v", err)
	}
	defer pc.Close()

	// Healthy chain first: a class-3 task reaches the terminal stage.
	resp, err := pc.Do(ctx, 1, 3)
	if err != nil || resp.ExitStage != 3 {
		t.Fatalf("healthy chain: exit=%d err=%v", resp.ExitStage, err)
	}

	// Kill the middle worker. Deep tasks now degrade at stage 0, whose
	// range ends past E1, so the First exit answers.
	_ = edges[1].Close()
	for i := 0; i < 3; i++ {
		taskCtx, taskCancel := context.WithTimeout(context.Background(), 15*time.Second)
		resp, err := pc.Do(taskCtx, uint64(10+i), 3)
		taskCancel()
		if err != nil {
			t.Fatalf("post-kill task %d: %v", i, err)
		}
		if resp.ExitStage != 1 {
			t.Errorf("post-kill task %d exited at %d, want degraded exit 1", i, resp.ExitStage)
		}
	}

	// A replacement worker takes over the dead stage: re-pushing the chain
	// (installs are idempotent upserts) restores full-depth service.
	replacement, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     chain.Workers[1].FLOPS,
		Model:     testModel(),
		TimeScale: scale,
		PeerLink:  peer,
	})
	if err != nil {
		t.Fatalf("StartEdge replacement: %v", err)
	}
	t.Cleanup(func() { _ = replacement.Close() })
	addrs[1] = replacement.Addr()
	if err := InstallPipeline(ctx, "chaos", addrs, PipelineFromPlan(plan)); err != nil {
		t.Fatalf("re-InstallPipeline: %v", err)
	}
	resp, err = pc.Do(ctx, 99, 3)
	if err != nil || resp.ExitStage != 3 {
		t.Fatalf("repaired chain: exit=%d err=%v", resp.ExitStage, err)
	}
}

// TestPipelineUnknownPipelineTyped verifies the wire classification of an
// activation for a chain nobody installed.
func TestPipelineUnknownPipelineTyped(t *testing.T) {
	edge, err := StartEdge(EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     1e10,
		Model:     testModel(),
		TimeScale: testScale,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()
	pc, err := DialPipeline(PipelineClientConfig{
		Addr:       edge.Addr(),
		PipelineID: "ghost",
		DeviceID:   "d",
		InputBytes: 1024,
		TimeScale:  testScale,
	})
	if err != nil {
		t.Fatalf("DialPipeline: %v", err)
	}
	defer pc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := pc.Do(ctx, 1, 2); !errors.Is(err, ErrUnknownPipeline) {
		t.Fatalf("want ErrUnknownPipeline across the wire, got %v", err)
	}
}

// TestDevicePipelinedMode drives the full device agent in pipelined mode:
// it installs the chain itself, sends every task through it (the offload
// decision is pinned to 1), and completes everything without errors.
func TestDevicePipelinedMode(t *testing.T) {
	net := pipeTestNet(t)
	chain := pipeTestChain()
	cuts := []int{net.E1, net.E2, net.Profile.NumExits()}
	plan, err := partition.Evaluate(partition.Config{Net: net, Chain: chain}, cuts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	const scale Scale = 0.01
	addrs := startPipelineEdges(t, chain, plan, scale)

	cfg := testDeviceConfig("", "pipe-dev")
	cfg.EdgeAddr = ""
	cfg.PipelineAddrs = addrs
	cfg.PipelineID = "diff" // startPipelineEdges installed under this id
	cfg.Pipeline = PipelineFromPlan(plan)
	cfg.TimeScale = scale
	cfg.Slots = 10
	cfg.WarmupSlots = 2
	cfg.ArrivalMean = 1
	stats, err := RunDevice(cfg)
	if err != nil {
		t.Fatalf("RunDevice: %v", err)
	}
	if stats.Generated == 0 {
		t.Fatal("no tasks generated")
	}
	if stats.Completed != stats.Generated || stats.Errors != 0 {
		t.Errorf("generated=%d completed=%d errors=%d", stats.Generated, stats.Completed, stats.Errors)
	}
	// Every slot decision must have been "offload into the chain".
	for i, x := range stats.Ratio.Values {
		if x != 1 {
			t.Fatalf("slot %d decision %v, want pinned 1", i, x)
		}
	}
}
