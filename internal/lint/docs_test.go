package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkDocsSrc runs the per-file declaration check on inline source.
func checkDocsSrc(t *testing.T, src string) []DocViolation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return missingDocsFile(fset, f)
}

func TestMissingDocsAccepts(t *testing.T) {
	good := []string{
		// Documented function, type, method.
		`package p
// F does things.
func F() {}
// T is a thing.
type T struct{}
// M acts on T.
func (t *T) M() {}`,
		// Unexported declarations need no docs.
		`package p
func f() {}
type t struct{}
var x = 1
const c = 2`,
		// A group comment covers every spec in the block.
		`package p
// Errors of the package.
var (
	ErrA = anErr()
	ErrB = anErr()
)`,
		// Per-spec comments inside an undocumented block also count.
		`package p
const (
	// A is the first.
	A = 1
	// B is the second.
	B = 2
)`,
		// Methods on unexported types are not API surface.
		`package p
type inner struct{}
func (i inner) Exported() {}`,
		// Imports never need docs.
		`package p
import "fmt"
// F uses fmt.
func F() { fmt.Println() }`,
	}
	for i, src := range good {
		if got := checkDocsSrc(t, src); len(got) != 0 {
			t.Errorf("case %d flagged: %v", i, got)
		}
	}
}

func TestMissingDocsFlags(t *testing.T) {
	bad := []struct {
		src    string
		symbol string
	}{
		{`package p
func Exported() {}`, "Exported"},
		{`package p
type T struct{}`, "T"},
		{`package p
// T is documented.
type T struct{}
func (t *T) M() {}`, "T.M"},
		{`package p
var Exported = 1`, "Exported"},
		{`package p
const (
	A = 1
)`, "A"},
		{`package p
var (
	// A is documented.
	A = 1
	B = 2
)`, "B"},
	}
	for i, c := range bad {
		got := checkDocsSrc(t, c.src)
		if len(got) != 1 {
			t.Errorf("case %d: %d violations (%v), want 1", i, len(got), got)
			continue
		}
		if got[0].Symbol != c.symbol {
			t.Errorf("case %d: flagged %q, want %q", i, got[0].Symbol, c.symbol)
		}
	}
}

// TestMissingDocsDirPackageClause checks the directory walk flags packages
// with no package comment in any file and exempts _test.go files entirely.
func TestMissingDocsDirPackageClause(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\n\n// F is documented.\nfunc F() {}\n")
	write("b_test.go", "package p\n\nfunc TestUndocumentedExportedHelper() {}\nfunc Helper() {}\n")
	got, err := MissingDocsDir(dir)
	if err != nil {
		t.Fatalf("MissingDocsDir: %v", err)
	}
	if len(got) != 1 || !strings.HasPrefix(got[0].Symbol, "package ") {
		t.Fatalf("want exactly the missing package comment, got %v", got)
	}
	write("a.go", "// Package p exists to be checked.\npackage p\n\n// F is documented.\nfunc F() {}\n")
	got, err = MissingDocsDir(dir)
	if err != nil {
		t.Fatalf("MissingDocsDir (documented): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("documented package still flagged: %v", got)
	}
}

// TestRepoIsDocClean gates the audit: the entire repository must stay free
// of undocumented exported declarations (CI runs cmd/doccheck for the same
// guarantee on every push).
func TestRepoIsDocClean(t *testing.T) {
	got, err := MissingDocsDir(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("MissingDocsDir: %v", err)
	}
	for _, v := range got {
		t.Errorf("%s", v)
	}
}
