package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// DocViolation is one exported symbol (or package clause) missing its doc
// comment — the repo-local equivalent of staticcheck's ST1000 (package
// comments) and ST1020/ST1021/ST1022 (exported declarations).
type DocViolation struct {
	// Pos is the "file:line:col" location of the undocumented declaration.
	Pos string
	// Symbol names what lacks documentation ("package foo", "Type",
	// "Type.Method", "ConstName").
	Symbol string
}

// String renders the violation as a "pos: symbol: rule" diagnostic line.
func (v DocViolation) String() string {
	return fmt.Sprintf("%s: %s: exported declarations need a doc comment", v.Pos, v.Symbol)
}

// MissingDocsDir parses every non-test .go file under root (skipping
// testdata and hidden directories) and returns the exported top-level
// declarations without doc comments, plus packages whose clause no file
// documents. A comment on a grouped declaration (one `const (...)` or
// `var (...)` block) covers every spec in the group, matching godoc's
// rendering; _test.go files are exempt because their audience is the test
// reader, not the API consumer.
func MissingDocsDir(root string) ([]DocViolation, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var out []DocViolation
	// pkgDocs tracks, per directory, whether any file documents the package
	// clause; pkgFirst remembers a representative position to report.
	pkgDocs := map[string]bool{}
	pkgFirst := map[string]string{}
	pkgName := map[string]string{}
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgDocs[dir] = true
		}
		if _, ok := pkgFirst[dir]; !ok || path < pkgFirst[dir] {
			pkgFirst[dir] = path
			pkgName[dir] = f.Name.Name
		}
		out = append(out, missingDocsFile(fset, f)...)
	}
	for dir, documented := range pkgDocsComplete(pkgDocs, pkgFirst) {
		if !documented {
			out = append(out, DocViolation{
				Pos:    pkgFirst[dir] + ":1:1",
				Symbol: "package " + pkgName[dir],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// pkgDocsComplete merges the per-directory doc observations: directories
// seen only in pkgFirst (no file documented the package) map to false.
func pkgDocsComplete(pkgDocs map[string]bool, pkgFirst map[string]string) map[string]bool {
	out := make(map[string]bool, len(pkgFirst))
	for dir := range pkgFirst {
		out[dir] = pkgDocs[dir]
	}
	return out
}

// missingDocsFile checks one parsed file's top-level declarations.
func missingDocsFile(fset *token.FileSet, f *ast.File) []DocViolation {
	var out []DocViolation
	report := func(pos token.Pos, symbol string) {
		out = append(out, DocViolation{Pos: fset.Position(pos).String(), Symbol: symbol})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := recvTypeName(d.Recv.List[0].Type)
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				name = recv + "." + name
			}
			report(d.Pos(), name)
		case *ast.GenDecl:
			if d.Tok == token.IMPORT || d.Doc != nil {
				continue // a group comment documents every spec in the block
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
							break // one violation per spec line
						}
					}
				}
			}
		}
	}
	return out
}
