package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkSrc(t *testing.T, src string) []Violation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ctxFirstFile(fset, f)
}

func TestCtxFirstAccepts(t *testing.T) {
	good := []string{
		`package p
import "context"
func ok(ctx context.Context, n int) {}`,
		`package p
import "context"
func okOnly(ctx context.Context) {}`,
		`package p
import "context"
type T struct{}
func (t *T) Handle(ctx context.Context, body any) error { return nil }`,
		`package p
func noCtx(a, b int) {}`,
		`package p
import stdctx "context"
func aliased(c stdctx.Context, n int) {}`,
		`package p
import "context"
var f = func(ctx context.Context, n int) {}`,
		// A type named context.Context from another package is not ours.
		`package p
import "other/context2"
func other(n int, c context2.Context) {}`,
	}
	for i, src := range good {
		if got := checkSrc(t, src); len(got) != 0 {
			t.Errorf("case %d flagged: %v", i, got)
		}
	}
}

func TestCtxFirstFlags(t *testing.T) {
	bad := []string{
		`package p
import "context"
func bad(n int, ctx context.Context) {}`,
		`package p
import "context"
type T struct{}
func (t T) Bad(name string, ctx context.Context) {}`,
		`package p
import stdctx "context"
func aliased(n int, c stdctx.Context) {}`,
		`package p
import "context"
var f = func(n int, ctx context.Context) {}`,
		`package p
import "context"
func multi(a, b int, ctx context.Context, s string) {}`,
	}
	for i, src := range bad {
		if got := checkSrc(t, src); len(got) != 1 {
			t.Errorf("case %d: got %d violations, want 1: %v", i, len(got), got)
		}
	}
}

func TestCtxFirstViolationString(t *testing.T) {
	got := checkSrc(t, `package p
import "context"
type S struct{}
func (s *S) Late(n int, ctx context.Context) {}`)
	if len(got) != 1 {
		t.Fatalf("violations = %v", got)
	}
	if want := "S.Late"; got[0].Func != want {
		t.Errorf("Func = %q, want %q", got[0].Func, want)
	}
	if !strings.Contains(got[0].String(), "first parameter") {
		t.Errorf("String() = %q", got[0].String())
	}
}

func TestCtxFirstDir(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\nimport \"context\"\nfunc bad(n int, ctx context.Context) {}\n")
	write("sub/b.go", "package q\nimport \"context\"\nfunc ok(ctx context.Context) {}\n")
	write("testdata/skip.go", "package r\nimport \"context\"\nfunc skipped(n int, ctx context.Context) {}\n")
	got, err := CtxFirstDir(dir)
	if err != nil {
		t.Fatalf("CtxFirstDir: %v", err)
	}
	if len(got) != 1 || got[0].Func != "bad" {
		t.Errorf("violations = %v, want exactly the one in a.go", got)
	}
}

// TestRepoFollowsConvention is the self-check that gates CI: the repo's own
// source must satisfy the context-first convention.
func TestRepoFollowsConvention(t *testing.T) {
	got, err := CtxFirstDir("../..")
	if err != nil {
		t.Fatalf("CtxFirstDir: %v", err)
	}
	for _, v := range got {
		t.Errorf("%s", v)
	}
}
