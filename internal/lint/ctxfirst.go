// Package lint holds the repo's own static checks, each exposed as a
// directory walk returning violations and wrapped by a cmd/ tool CI runs:
//
//   - CtxFirstDir (cmd/ctxcheck) enforces the context-aware API convention
//     introduced with the fault-tolerant runtime: any function that accepts
//     a context.Context must take it as its first parameter, so deadlines
//     and cancellation visibly enter every call chain at the front.
//   - MissingDocsDir (cmd/doccheck) enforces the documentation convention
//     from the docs re-anchor: every exported top-level declaration and
//     every package clause carries a doc comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Violation is one function whose context.Context parameter is not first.
type Violation struct {
	// Pos is the "file:line:col" location of the offending declaration.
	Pos string
	// Func names the function or method.
	Func string
}

// String renders the violation as a "pos: func: rule" diagnostic line.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: context.Context must be the first parameter", v.Pos, v.Func)
}

// CtxFirstDir parses every .go file under root (skipping testdata and
// hidden directories) and returns the functions that accept a
// context.Context anywhere but first, sorted by position.
func CtxFirstDir(root string) ([]Violation, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Violation
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		out = append(out, ctxFirstFile(fset, f)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ctxFirstFile checks one parsed file. Both declared functions and function
// literals are held to the convention.
func ctxFirstFile(fset *token.FileSet, f *ast.File) []Violation {
	ctxName := contextImportName(f)
	if ctxName == "" {
		return nil // file cannot name context.Context
	}
	var out []Violation
	ast.Inspect(f, func(n ast.Node) bool {
		var typ *ast.FuncType
		name := "func literal"
		switch fn := n.(type) {
		case *ast.FuncDecl:
			typ = fn.Type
			name = fn.Name.Name
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				name = recvTypeName(fn.Recv.List[0].Type) + "." + name
			}
		case *ast.FuncLit:
			typ = fn.Type
		default:
			return true
		}
		if pos, bad := ctxNotFirst(typ, ctxName); bad {
			out = append(out, Violation{Pos: fset.Position(pos).String(), Func: name})
		}
		return true
	})
	return out
}

// ctxNotFirst reports whether the function type takes a context.Context in
// any position after the first parameter name.
func ctxNotFirst(typ *ast.FuncType, ctxName string) (token.Pos, bool) {
	if typ.Params == nil {
		return token.NoPos, false
	}
	seen := 0 // parameter names (not fields) seen so far
	for _, field := range typ.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter still occupies a position
		}
		if isCtxType(field.Type, ctxName) && seen > 0 {
			return field.Pos(), true
		}
		seen += names
	}
	return token.NoPos, false
}

func isCtxType(expr ast.Expr, ctxName string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxName
}

// contextImportName returns the local name under which the file imports the
// standard context package, or "" when it does not.
func contextImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "context" {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return "context"
	}
	return ""
}

func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return "?"
	}
}
