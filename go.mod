module leime

go 1.22
