package leime

// One benchmark per paper artifact: each BenchmarkFig* regenerates the
// corresponding figure's data (quick sweeps) per iteration, so
// `go test -bench=. -benchmem` exercises every experiment end to end.
// The micro-benchmarks below them time the core algorithms in isolation.

import (
	"io"
	"testing"

	"leime/internal/bench"
	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/exitsetting"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMotivation(b *testing.B)            { benchExperiment(b, "motivation") }
func BenchmarkFig2ExitSetting(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3OffloadRatio(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig6Accuracy(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Network(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8Models(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9Stability(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10aExitAblation(b *testing.B)    { benchExperiment(b, "fig10a") }
func BenchmarkFig10bOffloadAblation(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig11Scaling(b *testing.B)          { benchExperiment(b, "fig11") }

// BenchmarkRunAllSerial and BenchmarkRunAllParallel time the full
// experiment suite through the runner at parallelism 1 vs NumCPU; their
// ratio is the wall-clock payoff of the parallel runner (bounded below by
// the crosscheck experiment, which sleeps on a real socket testbed).
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAll(io.Discard, true, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAll(io.Discard, true, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Beyond-paper ablation, extension and validation experiments.
func BenchmarkAblationV(b *testing.B)      { benchExperiment(b, "ablation-v") }
func BenchmarkAblationAlloc(b *testing.B)  { benchExperiment(b, "ablation-alloc") }
func BenchmarkAblationSolver(b *testing.B) { benchExperiment(b, "ablation-solver") }
func BenchmarkWildLinks(b *testing.B)      { benchExperiment(b, "wildlinks") }
func BenchmarkExtDeadline(b *testing.B)    { benchExperiment(b, "ext-deadline") }
func BenchmarkExtJoint(b *testing.B)       { benchExperiment(b, "ext-joint") }
func BenchmarkCrossCheck(b *testing.B)     { benchExperiment(b, "crosscheck") }

// benchInstance prepares a calibrated exit-setting instance once.
func benchInstance(b *testing.B, p *model.Profile) *exitsetting.Instance {
	b.Helper()
	ds, err := dataset.Generate(dataset.CIFAR10Like, 1000, 3)
	if err != nil {
		b.Fatal(err)
	}
	_, _, sigma, err := confidence.Calibrated(p, ds, 3)
	if err != nil {
		b.Fatal(err)
	}
	in, err := exitsetting.NewInstance(p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B))
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkExitSettingBranchAndBound times the paper's O(m ln m) solver.
func BenchmarkExitSettingBranchAndBound(b *testing.B) {
	in := benchInstance(b, model.ResNet34())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := in.BranchAndBound(); s.E1 < 1 {
			b.Fatal("no solution")
		}
	}
}

// BenchmarkExitSettingExhaustive times the O(m^2) ground-truth solver for
// comparison with the branch-and-bound benchmark above.
func BenchmarkExitSettingExhaustive(b *testing.B) {
	in := benchInstance(b, model.ResNet34())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := in.Exhaustive(); s.E1 < 1 {
			b.Fatal("no solution")
		}
	}
}

// BenchmarkOffloadDecide times one per-slot decentralized offloading
// decision (the per-device, per-slot cost of LEIME's controller).
func BenchmarkOffloadDecide(b *testing.B) {
	ctrl, err := offload.NewController(offload.Config{
		Model: offload.ModelParams{
			Mu:    [3]float64{2e8, 8e8, 1e9},
			D:     [3]float64{3088, 65536, 8192},
			Sigma: [3]float64{0.4, 0.8, 1},
		},
		TauSec: 1,
		V:      1e4,
	})
	if err != nil {
		b.Fatal(err)
	}
	dev := offload.Device{FLOPS: 1.2e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 10}
	slot := offload.Slot{Arrivals: 10, State: offload.State{Q: 5, H: 2}, EdgeShareFLOPS: 1e10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x := ctrl.Decide(dev, slot); x < 0 || x > 1 {
			b.Fatal("bad decision")
		}
	}
}

// BenchmarkEventSimThroughput measures the discrete-event simulator's task
// throughput (tasks simulated per second of wall time).
func BenchmarkEventSimThroughput(b *testing.B) {
	cfg := sim.EventConfig{
		Model: offload.ModelParams{
			Mu:    [3]float64{2e8, 8e8, 1e9},
			D:     [3]float64{3088, 65536, 8192},
			Sigma: [3]float64{0.4, 0.8, 1},
		},
		Devices: []sim.DeviceSpec{{Device: offload.Device{
			FLOPS: 1.2e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 10,
		}}},
		EdgeFLOPS:   6e10,
		CloudFLOPS:  2e12,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       100,
		WarmupSlots: 10,
		Seed:        5,
	}
	b.ResetTimer()
	tasks := 0
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEvents(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tasks += res.Completed
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkBuild times a full System build: dataset generation, threshold
// calibration and the exit-setting solve.
func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Options{Arch: "inception-v3", Env: TestbedEnv(RaspberryPi3B)}); err != nil {
			b.Fatal(err)
		}
	}
}
