// Command leime-bench regenerates the paper's evaluation artifacts: every
// figure and the motivation-section numbers. Run one experiment with
// -experiment fig7, or everything with -experiment all. Independent
// experiments (and the heavy experiments' inner sweeps) run on a bounded
// worker pool sized by -parallel; the emitted tables are byte-identical at
// every parallelism. -json records per-experiment wall times and the
// solvers' cost-evaluation counters for perf-trajectory tracking, and
// -cpuprofile captures a pprof profile of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"leime/internal/bench"
)

// report is the machine-readable run record -json emits.
type report struct {
	Quick            bool                   `json:"quick"`
	Parallelism      int                    `json:"parallelism"`
	GOMAXPROCS       int                    `json:"gomaxprocs"`
	TotalWallSeconds float64                `json:"total_wall_seconds"`
	Experiments      []experimentRecord     `json:"experiments"`
	SolverEvals      []bench.SolverEvals    `json:"solver_evals"`
	Telemetry        *bench.TelemetryReport `json:"telemetry,omitempty"`
}

type experimentRecord struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
}

// partitionEnvelope wraps the partition study report in the PR provenance
// header the committed PARTITION_9.json artifact carries.
type partitionEnvelope struct {
	PR    int    `json:"pr"`
	Title string `json:"title"`
	Date  string `json:"date"`
	Host  string `json:"host"`
	Study struct {
		Command string                 `json:"command"`
		Note    string                 `json:"note"`
		Report  *bench.PartitionReport `json:"report"`
	} `json:"study"`
}

// writePartitionJSON runs the partition study and records its report with
// the provenance envelope.
func writePartitionJSON(path string, quick bool) error {
	rep, err := bench.RunPartitionStudy(os.Stdout, quick)
	if err != nil {
		return err
	}
	env := partitionEnvelope{
		PR:    9,
		Title: "Pipeline-partitioned inference across edge workers: min-latency chain cuts, staged runtime, three agreeing substrates",
		Date:  time.Now().Format("2006-01-02"),
		Host:  fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
	}
	env.Study.Command = "leime-bench -experiment partition -partition-json PARTITION_9.json"
	env.Study.Note = "Load numbers come from the deterministic event simulator (pinned seed); the differential section executes the same cut over loopback TCP, so its runtime_sec entries carry timer and transport noise and are gated loosely. Single-edge offload saturates at the solver's single_sustainable_per_sec; the pipelined cut carries the same load with bounded queues."
	env.Study.Report = rep
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("partition-json: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		f.Close()
		return fmt.Errorf("partition-json: %w", err)
	}
	return f.Close()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment    = flag.String("experiment", "all", "experiment id (fig2, fig3, fig6, fig7, fig8, fig9, fig10a, fig10b, fig11, motivation) or 'all'")
		quick         = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list          = flag.Bool("list", false, "list experiments and exit")
		parallel      = flag.Int("parallel", runtime.NumCPU(), "worker-pool width for experiments and inner sweeps (1 = serial)")
		jsonPath      = flag.String("json", "", "write per-experiment wall times and solver eval counters to this file")
		partitionJSON = flag.String("partition-json", "", "run the partition study and write its report (with the PR envelope) to this file")
		cpuprofile    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	)
	flag.Parse()

	if *partitionJSON != "" {
		return writePartitionJSON(*partitionJSON, *quick)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	var results []bench.Result
	if *experiment == "all" {
		var err error
		results, err = bench.RunAll(os.Stdout, *quick, *parallel)
		if err != nil {
			return err
		}
	} else {
		e, err := bench.ByID(*experiment)
		if err != nil {
			return err
		}
		bench.SetParallelism(*parallel)
		fmt.Printf("=== %s: %s\n\n", e.ID, e.Title)
		expStart := time.Now()
		if err := e.Run(os.Stdout, *quick); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		results = []bench.Result{{ID: e.ID, Title: e.Title, WallSeconds: time.Since(expStart).Seconds()}}
	}

	if *jsonPath != "" {
		evals, err := bench.SolverEvalCounts()
		if err != nil {
			return fmt.Errorf("solver evals: %w", err)
		}
		tel, err := bench.CollectTelemetry(*quick)
		if err != nil {
			return fmt.Errorf("telemetry summary: %w", err)
		}
		rep := report{
			Quick:            *quick,
			Parallelism:      *parallel,
			GOMAXPROCS:       runtime.GOMAXPROCS(0),
			TotalWallSeconds: time.Since(start).Seconds(),
			SolverEvals:      evals,
			Telemetry:        tel,
		}
		for _, r := range results {
			rep.Experiments = append(rep.Experiments, experimentRecord{ID: r.ID, Title: r.Title, WallSeconds: r.WallSeconds})
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return fmt.Errorf("json: %w", err)
		}
		return f.Close()
	}
	return nil
}
