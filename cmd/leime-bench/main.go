// Command leime-bench regenerates the paper's evaluation artifacts: every
// figure and the motivation-section numbers. Run one experiment with
// -experiment fig7, or everything with -experiment all.
package main

import (
	"flag"
	"fmt"
	"os"

	"leime/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig2, fig3, fig6, fig7, fig8, fig9, fig10a, fig10b, fig11, motivation) or 'all'")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return nil
	}

	experiments := bench.All()
	if *experiment != "all" {
		e, err := bench.ByID(*experiment)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}
	for i, e := range experiments {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s\n\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, *quick); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
