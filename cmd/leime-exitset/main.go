// Command leime-exitset solves the exit-setting problem P0 for a DNN profile
// and environment, and compares LEIME's setting against every baseline
// scheme.
//
// Example:
//
//	leime-exitset -arch inception-v3 -device nano -bandwidth 10 -latency 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"leime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-exitset:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		arch      = flag.String("arch", "inception-v3", "DNN profile: "+strings.Join(leime.Architectures(), ", "))
		device    = flag.String("device", "pi", "end device: pi or nano")
		bandwidth = flag.Float64("bandwidth", 10, "device-edge bandwidth in Mbps")
		latency   = flag.Float64("latency", 0.02, "device-edge propagation latency in seconds")
		edgeLoad  = flag.Float64("edge-share", 1, "fraction of the edge available to this device (0..1]")
		easyFrac  = flag.Float64("easy", 0, "easy-sample fraction of the workload (0 = default mixture)")
		sweepBW   = flag.Bool("sweep-bandwidth", false, "also print the optimal exits across a bandwidth sweep")
		sweepLoad = flag.Bool("sweep-load", false, "also print the optimal exits across an edge-load sweep")
	)
	flag.Parse()

	var node leime.Node
	switch *device {
	case "pi":
		node = leime.RaspberryPi3B
	case "nano":
		node = leime.JetsonNano
	default:
		return fmt.Errorf("unknown device %q (want pi or nano)", *device)
	}
	env := leime.TestbedEnv(node).
		WithDeviceEdge(leime.Path{BandwidthBps: leime.Mbps(*bandwidth), LatencySec: *latency}).
		WithEdgeLoad(*edgeLoad)

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: env, EasyFraction: *easyFrac})
	if err != nil {
		return err
	}
	e1, e2, e3 := sys.Exits()
	params := sys.Params()
	fmt.Printf("model:       %s\n", sys.Arch())
	fmt.Printf("environment: device=%s bandwidth=%.1fMbps latency=%.0fms edge-share=%.2f\n",
		node.Name, *bandwidth, *latency*1000, *edgeLoad)
	fmt.Printf("exit setting: First=exit-%d Second=exit-%d Third=exit-%d\n", e1, e2, e3)
	fmt.Printf("exit rates:   sigma=[%.3f %.3f %.3f]\n", params.Sigma[0], params.Sigma[1], params.Sigma[2])
	fmt.Printf("blocks:       mu=[%.3g %.3g %.3g] FLOPs, boundaries d=[%.0f %.0f %.0f] bytes\n",
		params.Mu[0], params.Mu[1], params.Mu[2], params.D[0], params.D[1], params.D[2])
	fmt.Printf("expected TCT: %.4fs (no queueing)\n\n", sys.ExpectedTCT())

	costs, err := sys.CompareStrategies()
	if err != nil {
		return err
	}
	fmt.Println("scheme comparison (expected per-task completion time):")
	for _, c := range costs {
		speed := c.TCT / costs[0].TCT
		fmt.Printf("  %-13s exits (%2d, %2d)  TCT %.4fs  (%.2fx LEIME)\n", c.Name, c.E1, c.E2, c.TCT, speed)
	}

	if *sweepBW {
		pts, err := sys.SweepBandwidth([]float64{1, 2, 4, 8, 16, 32, 64, 128})
		if err != nil {
			return err
		}
		fmt.Println("\noptimal exits vs device-edge bandwidth:")
		for _, pt := range pts {
			fmt.Printf("  %-8s exits (%2d, %2d)  TCT %.4fs\n", pt.Label, pt.E1, pt.E2, pt.TCT)
		}
	}
	if *sweepLoad {
		pts, err := sys.SweepEdgeLoad([]float64{1, 0.5, 0.25, 0.1, 0.05, 0.02})
		if err != nil {
			return err
		}
		fmt.Println("\noptimal exits vs edge share:")
		for _, pt := range pts {
			fmt.Printf("  %-11s exits (%2d, %2d)  TCT %.4fs\n", pt.Label, pt.E1, pt.E2, pt.TCT)
		}
	}
	return nil
}
