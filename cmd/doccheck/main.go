// Command doccheck enforces the repo's documentation convention on the
// packages it is pointed at: every exported top-level declaration needs a
// doc comment, and every package needs a package comment (the repo-local
// ST1000/ST1020 equivalents). It exits non-zero and prints one line per
// violation otherwise.
//
// Usage: doccheck [dir ...]   (default ".")
package main

import (
	"fmt"
	"os"

	"leime/internal/lint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	total := 0
	for _, root := range roots {
		violations, err := lint.MissingDocsDir(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
		}
		total += len(violations)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", total)
		os.Exit(1)
	}
}
