// Command ctxcheck enforces the repo's context-first convention: any
// function taking a context.Context must take it as the first parameter.
// It exits non-zero and prints one line per violation otherwise.
//
// Usage: ctxcheck [dir]   (default ".")
package main

import (
	"fmt"
	"os"

	"leime/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := lint.CtxFirstDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxcheck:", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "ctxcheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}
