package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leime/internal/analysis"
	"leime/internal/analysis/wirefrozen"
)

// loadRepo loads every package in the module, mirroring what `leimevet
// ./...` analyzes in CI.
func loadRepo(t *testing.T, tests bool) (string, []*analysis.Package) {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatalf("findModuleRoot: %v", err)
	}
	loader := analysis.NewLoader()
	if err := loader.SetModule(root); err != nil {
		t.Fatalf("SetModule: %v", err)
	}
	loader.IncludeTests = tests
	paths, err := expandPatterns(loader, root, []string{"./..."})
	if err != nil {
		t.Fatalf("expandPatterns: %v", err)
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		loaded, err := loader.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	return root, pkgs
}

// TestRepoIsInvariantClean gates the audit: the entire repository must stay
// clean under every analyzer in the suite (CI runs cmd/leimevet for the
// same guarantee on every push). One subtest per analyzer so a regression
// names the invariant it broke.
func TestRepoIsInvariantClean(t *testing.T) {
	root, pkgs := loadRepo(t, true)
	prev := wirefrozen.ManifestPath
	wirefrozen.ManifestPath = filepath.Join(root, "wire.manifest")
	defer func() { wirefrozen.ManifestPath = prev }()

	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byAnalyzer := map[string][]analysis.Finding{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], f)
	}
	for _, a := range analyzers {
		t.Run(a.Name, func(t *testing.T) {
			for _, f := range byAnalyzer[a.Name] {
				t.Errorf("%s", f)
			}
		})
		delete(byAnalyzer, a.Name)
	}
	// Malformed //lint:ignore directives surface under their own name.
	for name, fs := range byAnalyzer {
		for _, f := range fs {
			t.Errorf("%s: %s", name, f)
		}
	}
}

// mutateRuntime copies internal/runtime into an overlay with one textual
// mutation applied to codec.go and loads it against the real module (all
// other imports resolve normally).
func mutateRuntime(t *testing.T, old, new string) []*analysis.Package {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatalf("findModuleRoot: %v", err)
	}
	srcDir := filepath.Join(root, "internal", "runtime")
	overlay := t.TempDir()
	dstDir := filepath.Join(overlay, "leime", "internal", "runtime")
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == "codec.go" {
			src := string(data)
			if !strings.Contains(src, old) {
				t.Fatalf("codec.go no longer contains %q; update the mutation test", old)
			}
			data = []byte(strings.Replace(src, old, new, 1))
			mutated = true
		}
		if err := os.WriteFile(filepath.Join(dstDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !mutated {
		t.Fatal("internal/runtime/codec.go not found")
	}
	loader := analysis.NewLoader()
	if err := loader.SetModule(root); err != nil {
		t.Fatalf("SetModule: %v", err)
	}
	loader.Overlay = overlay
	pkgs, err := loader.Load("leime/internal/runtime")
	if err != nil {
		t.Fatalf("Load mutated runtime: %v", err)
	}
	return pkgs
}

// runWirefrozen applies only wirefrozen to the mutated package against the
// committed manifest.
func runWirefrozen(t *testing.T, pkgs []*analysis.Package) []analysis.Finding {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatalf("findModuleRoot: %v", err)
	}
	prev := wirefrozen.ManifestPath
	wirefrozen.ManifestPath = filepath.Join(root, "wire.manifest")
	defer func() { wirefrozen.ManifestPath = prev }()
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{wirefrozen.Analyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return findings
}

// wantFinding asserts that some finding message contains the fragment.
func wantFinding(t *testing.T, findings []analysis.Finding, fragment string) {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f.Message, fragment) {
			return
		}
	}
	t.Errorf("no finding contains %q; got %v", fragment, findings)
}

// TestWirefrozenCatchesIDMove proves the committed manifest is load-bearing:
// moving a registration to a fresh ID orphans the frozen entry and surfaces
// the unfrozen one.
func TestWirefrozenCatchesIDMove(t *testing.T) {
	pkgs := mutateRuntime(t, "codecIDRegisterReq      = 1", "codecIDRegisterReq      = 21")
	findings := runWirefrozen(t, pkgs)
	wantFinding(t, findings, "codec ID 21 (leime/internal/runtime.RegisterReq) is not in wire.manifest")
	wantFinding(t, findings, "wire.manifest entry for codec ID 1")
}

// TestWirefrozenCatchesIDReuse proves reusing a frozen ID for another type
// fails, and that the duplicate in-code binding is reported.
func TestWirefrozenCatchesIDReuse(t *testing.T) {
	pkgs := mutateRuntime(t, "codecIDRegisterResp     = 2", "codecIDRegisterResp     = 1")
	findings := runWirefrozen(t, pkgs)
	wantFinding(t, findings, "codec ID 1 registered twice")
}

// TestWirefrozenCatchesFieldReorder proves the signature freeze: swapping
// two encoded fields changes the fingerprint even though the Go types and
// codec ID are untouched.
func TestWirefrozenCatchesFieldReorder(t *testing.T) {
	pkgs := mutateRuntime(t,
		"e.Float64(r.FLOPS)\n\t\t\te.Float64(r.ArrivalMean)",
		"e.Float64(r.ArrivalMean)\n\t\t\te.Float64(r.FLOPS)")
	findings := runWirefrozen(t, pkgs)
	wantFinding(t, findings, "wire signature of codec ID 1 (leime/internal/runtime.RegisterReq) changed")
}
