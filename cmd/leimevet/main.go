// Command leimevet is the repo's multichecker: it loads packages from
// source and applies every project-specific analyzer in one pass —
// codeccomplete, determinism, unitsafety, lockdiscipline, wireerrors,
// plus the ctxfirst
// and missingdocs checks that replaced cmd/ctxcheck and cmd/doccheck. It
// prints one line per finding and exits non-zero when any survive the
// //lint:ignore suppression filter.
//
// Usage:
//
//	leimevet [-json] [-fix] [-tests=false] [pattern ...]
//
// Patterns are directories, "./..."-style recursive patterns, or import
// paths; the default is "./..." from the enclosing module root. -json
// emits the findings as a JSON array instead of text. -fix applies each
// finding's suggested fix (currently the errors.Is rewrites) to the files
// in place and reports what remains unfixable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"leime/internal/analysis"
	"leime/internal/analysis/codeccomplete"
	"leime/internal/analysis/ctxfirst"
	"leime/internal/analysis/determinism"
	"leime/internal/analysis/lockdiscipline"
	"leime/internal/analysis/missingdocs"
	"leime/internal/analysis/unitsafety"
	"leime/internal/analysis/wireerrors"
)

// analyzers is the full suite, in the order findings are attributed.
var analyzers = []*analysis.Analyzer{
	codeccomplete.Analyzer,
	ctxfirst.Analyzer,
	determinism.Analyzer,
	lockdiscipline.Analyzer,
	missingdocs.Analyzer,
	unitsafety.Analyzer,
	wireerrors.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	tests := flag.Bool("tests", true, "include _test.go files in analysis")
	flag.Parse()
	if err := run(flag.Args(), *jsonOut, *fix, *tests); err != nil {
		fmt.Fprintln(os.Stderr, "leimevet:", err)
		os.Exit(2)
	}
}

func run(patterns []string, jsonOut, fix, tests bool) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader := analysis.NewLoader()
	if err := loader.SetModule(root); err != nil {
		return err
	}
	loader.IncludeTests = tests

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(loader, root, patterns)
	if err != nil {
		return err
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		loaded, err := loader.Load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, loaded...)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return err
	}
	if fix {
		return applyFixes(findings)
	}
	if jsonOut {
		return emitJSON(findings)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "leimevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}

// applyFixes rewrites files with every suggested fix, then lists what has
// no machine fix and must be addressed by hand.
func applyFixes(findings []analysis.Finding) error {
	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "leimevet: applied %d fix(es)\n", fixed)
	unfixed := 0
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			fmt.Println(f)
			unfixed++
		}
	}
	if unfixed > 0 {
		fmt.Fprintf(os.Stderr, "leimevet: %d finding(s) without fixes remain\n", unfixed)
		os.Exit(1)
	}
	return nil
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	// Analyzer names the check.
	Analyzer string `json:"analyzer"`
	// Pos is the file:line:col location.
	Pos string `json:"pos"`
	// Message is the diagnostic text.
	Message string `json:"message"`
	// Fixable reports whether -fix can rewrite it.
	Fixable bool `json:"fixable"`
}

func emitJSON(findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			Pos:      f.Position.String(),
			Message:  f.Message,
			Fixable:  len(f.Diag.SuggestedFixes) > 0,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// expandPatterns turns CLI patterns into import paths. A trailing "/..."
// recurses; other patterns name one directory or import path.
func expandPatterns(loader *analysis.Loader, root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, err := patternDir(root, rest)
			if err != nil {
				return nil, err
			}
			if err := walkPackages(root, base, loader.ModuleName, add); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(pat, loader.ModuleName) {
			add(pat)
			continue
		}
		dir, err := patternDir(root, pat)
		if err != nil {
			return nil, err
		}
		add(importPath(root, dir, loader.ModuleName))
	}
	sort.Strings(out)
	return out, nil
}

// patternDir resolves a non-recursive pattern to an absolute directory.
func patternDir(root, pat string) (string, error) {
	if pat == "" || pat == "." {
		return root, nil
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return "", err
		}
		dir = abs
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", fmt.Errorf("pattern %q: not a directory", pat)
	}
	return dir, nil
}

// walkPackages invokes add for every directory under base that contains Go
// files, skipping hidden, vendor and testdata trees.
func walkPackages(root, base, module string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			add(importPath(root, filepath.Dir(path), module))
		}
		return nil
	})
}

// importPath maps a directory under root to its module import path.
func importPath(root, dir, module string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}
