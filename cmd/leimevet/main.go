// Command leimevet is the repo's multichecker: it loads packages from
// source and applies every project-specific analyzer in one pass —
// codeccomplete, determinism, unitsafety, lockdiscipline, wireerrors,
// the ctxfirst and missingdocs checks that replaced cmd/ctxcheck and
// cmd/doccheck, and the invariant suite: wirefrozen (codec registry vs
// the committed wire.manifest), clockpure (no wall clock in model-clock
// packages), spanbalance (every started span ends), atomicmix (no mixed
// atomic/plain field access) and deadlinefwd (forwards propagate the
// incoming deadline). It prints one line per finding and exits non-zero
// when any survive the //lint:ignore suppression filter.
//
// Usage:
//
//	leimevet [-json] [-fix] [-write-manifest] [-tests=false] [pattern ...]
//
// Patterns are directories, "./..."-style recursive patterns, or import
// paths; the default is "./..." from the enclosing module root. -json
// emits a JSON object carrying the findings, per-analyzer counts and the
// wire.manifest hash. -fix applies each finding's suggested fix (the
// errors.Is rewrites and wire.manifest regeneration) to the files in
// place and reports what remains unfixable. -write-manifest skips
// analysis entirely and rewrites wire.manifest from the loaded packages'
// rpc.RegisterCodec calls — CI runs it and fails on any resulting diff.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"leime/internal/analysis"
	"leime/internal/analysis/atomicmix"
	"leime/internal/analysis/clockpure"
	"leime/internal/analysis/codeccomplete"
	"leime/internal/analysis/ctxfirst"
	"leime/internal/analysis/deadlinefwd"
	"leime/internal/analysis/determinism"
	"leime/internal/analysis/lockdiscipline"
	"leime/internal/analysis/missingdocs"
	"leime/internal/analysis/spanbalance"
	"leime/internal/analysis/unitsafety"
	"leime/internal/analysis/wireerrors"
	"leime/internal/analysis/wirefrozen"
)

// analyzers is the full suite, in the order findings are attributed.
var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	clockpure.Analyzer,
	codeccomplete.Analyzer,
	ctxfirst.Analyzer,
	deadlinefwd.Analyzer,
	determinism.Analyzer,
	lockdiscipline.Analyzer,
	missingdocs.Analyzer,
	spanbalance.Analyzer,
	unitsafety.Analyzer,
	wireerrors.Analyzer,
	wirefrozen.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit a JSON report object")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	writeManifest := flag.Bool("write-manifest", false, "regenerate wire.manifest from the loaded packages and exit")
	tests := flag.Bool("tests", true, "include _test.go files in analysis")
	flag.Parse()
	if err := run(flag.Args(), *jsonOut, *fix, *writeManifest, *tests); err != nil {
		fmt.Fprintln(os.Stderr, "leimevet:", err)
		os.Exit(2)
	}
}

func run(patterns []string, jsonOut, fix, writeManifest, tests bool) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	wirefrozen.ManifestPath = filepath.Join(root, "wire.manifest")
	loader := analysis.NewLoader()
	if err := loader.SetModule(root); err != nil {
		return err
	}
	loader.IncludeTests = tests

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(loader, root, patterns)
	if err != nil {
		return err
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		loaded, err := loader.Load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, loaded...)
	}
	if writeManifest {
		return regenerateManifest(pkgs)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return err
	}
	if fix {
		return applyFixes(findings)
	}
	if jsonOut {
		return emitJSON(findings)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "leimevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}

// regenerateManifest rewrites wire.manifest from the loaded packages'
// registrations, preserving entries owned by packages outside this load.
func regenerateManifest(pkgs []*analysis.Package) error {
	existing, err := wirefrozen.LoadManifest(wirefrozen.ManifestPath)
	if err != nil {
		return err
	}
	owned := map[string]bool{}
	for _, p := range pkgs {
		owned[p.Pkg.Path()] = true
	}
	regs := wirefrozen.ExtractPackages(pkgs)
	byID := map[uint64]string{}
	for _, e := range regs {
		if prev, dup := byID[e.ID]; dup && prev != e.Type {
			return fmt.Errorf("codec ID %d registered for both %s and %s; resolve the collision before freezing", e.ID, prev, e.Type)
		}
		byID[e.ID] = e.Type
	}
	merged := wirefrozen.MergeManifest(existing, owned, regs)
	if err := os.WriteFile(wirefrozen.ManifestPath, wirefrozen.FormatManifest(merged), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "leimevet: wrote %s (%d codec IDs)\n", wirefrozen.ManifestPath, len(merged))
	return nil
}

// applyFixes rewrites files with every suggested fix, then lists what has
// no machine fix and must be addressed by hand.
func applyFixes(findings []analysis.Finding) error {
	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "leimevet: applied %d fix(es)\n", fixed)
	unfixed := 0
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			fmt.Println(f)
			unfixed++
		}
	}
	if unfixed > 0 {
		fmt.Fprintf(os.Stderr, "leimevet: %d finding(s) without fixes remain\n", unfixed)
		os.Exit(1)
	}
	return nil
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	// Analyzer names the check.
	Analyzer string `json:"analyzer"`
	// Pos is the file:line:col location.
	Pos string `json:"pos"`
	// Message is the diagnostic text.
	Message string `json:"message"`
	// Fixable reports whether -fix can rewrite it.
	Fixable bool `json:"fixable"`
}

// jsonReport is the -json output: the findings plus per-analyzer counts
// (zero entries included, so a clean run still enumerates the suite) and
// the sha256 of the committed wire.manifest ("" when absent).
type jsonReport struct {
	Findings []jsonFinding  `json:"findings"`
	Counts   map[string]int `json:"counts"`
	Manifest string         `json:"wire_manifest_sha256"`
}

func emitJSON(findings []analysis.Finding) error {
	report := jsonReport{
		Findings: make([]jsonFinding, 0, len(findings)),
		Counts:   make(map[string]int, len(analyzers)),
	}
	for _, a := range analyzers {
		report.Counts[a.Name] = 0
	}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			Pos:      f.Position.String(),
			Message:  f.Message,
			Fixable:  len(f.Diag.SuggestedFixes) > 0,
		})
		report.Counts[f.Analyzer]++
	}
	if data, err := os.ReadFile(wirefrozen.ManifestPath); err == nil {
		report.Manifest = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// expandPatterns turns CLI patterns into import paths. A trailing "/..."
// recurses; other patterns name one directory or import path.
func expandPatterns(loader *analysis.Loader, root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, err := patternDir(root, rest)
			if err != nil {
				return nil, err
			}
			if err := walkPackages(root, base, loader.ModuleName, add); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(pat, loader.ModuleName) {
			add(pat)
			continue
		}
		dir, err := patternDir(root, pat)
		if err != nil {
			return nil, err
		}
		add(importPath(root, dir, loader.ModuleName))
	}
	sort.Strings(out)
	return out, nil
}

// patternDir resolves a non-recursive pattern to an absolute directory.
func patternDir(root, pat string) (string, error) {
	if pat == "" || pat == "." {
		return root, nil
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return "", err
		}
		dir = abs
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", fmt.Errorf("pattern %q: not a directory", pat)
	}
	return dir, nil
}

// walkPackages invokes add for every directory under base that contains Go
// files, skipping hidden, vendor and testdata trees.
func walkPackages(root, base, module string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			add(importPath(root, filepath.Dir(path), module))
		}
		return nil
	})
}

// importPath maps a directory under root to its module import path.
func importPath(root, dir, module string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}
