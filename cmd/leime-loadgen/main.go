// Command leime-loadgen is the open-loop load harness: N synthetic devices
// offer first-block work to an edge server at a configured rate and the tool
// reports achieved throughput, the completion-latency distribution and the
// rejection/shed counts as JSON. Point it at a live edge with -edge, or let
// it spin up an in-process edge+cloud testbed (the default) to probe batching
// and admission-control settings without deploying anything.
//
// A single run measures one offered rate; -rate-sweep walks a list of rates
// and emits the saturation report the capacity model in DESIGN.md §11 is
// calibrated against: achieved-vs-offered locates the knee, p99-vs-offered
// shows the latency cliff past it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"leime"
	"leime/internal/loadgen"
	"leime/internal/runtime"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leime-loadgen:", err)
		os.Exit(1)
	}
}

// run is the tool body; main wires it to os.Args, stdout and signals, and
// tests drive it directly.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("leime-loadgen", flag.ContinueOnError)
	var (
		edgeAddr  = fs.String("edge", "", "edge server to drive (empty = spin up an in-process edge+cloud testbed)")
		arch      = fs.String("arch", "inception-v3", "DNN profile (payload sizes and exit rates)")
		devices   = fs.Int("devices", 4, "synthetic devices to register")
		rate      = fs.Float64("rate", 5, "offered rate per device in tasks/sec")
		rateSweep = fs.String("rate-sweep", "", "comma-separated per-device rates; runs each and emits a saturation report")
		arrival   = fs.String("arrival", "poisson", "arrival process: poisson or constant")
		duration  = fs.Duration("duration", 2*time.Second, "generation horizon per run")
		seed      = fs.Int64("seed", 1, "schedule seed (equal seeds offer identical schedules)")
		timeout   = fs.Duration("timeout", 0, "per-task deadline (0 = none); expiries count as sheds")
		devFLOPS  = fs.Float64("device-flops", 1e9, "capability each synthetic device registers with")
		minDone   = fs.Int("min-completed", 0, "exit nonzero unless at least this many tasks complete (CI smoke)")

		edgeFLOPS   = fs.Float64("edge-flops", leime.EdgeDesktop.FLOPS, "in-process testbed: edge capability in FLOPS")
		cloudFLOPS  = fs.Float64("cloud-flops", leime.CloudV100.FLOPS, "in-process testbed: cloud capability in FLOPS")
		scale       = fs.Float64("scale", 1, "in-process testbed: time compression factor")
		queueBudget = fs.Float64("queue-budget", 0, "in-process testbed: per-tenant backlog budget in seconds of work (0 = unbounded)")
		batchSize   = fs.Int("batch-size", 0, "in-process testbed: max same-block executions per amortized burn (<=1 = off)")
		batchDelay  = fs.Float64("batch-delay", 0, "in-process testbed: max seconds a task waits for co-arriving work (0 = off)")
		batchMarg   = fs.Float64("batch-marginal", 0, "in-process testbed: cost of each extra batched task as a fraction of the first (0 = default 0.25)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	addr := *edgeAddr
	if addr == "" {
		cloud, err := runtime.StartCloud(runtime.CloudConfig{
			Addr:        "127.0.0.1:0",
			FLOPS:       *cloudFLOPS,
			Block3FLOPs: sys.Params().Mu[2],
			TimeScale:   runtime.Scale(*scale),
		})
		if err != nil {
			return err
		}
		defer cloud.Close()
		edge, err := runtime.StartEdge(runtime.EdgeConfig{
			Addr:          "127.0.0.1:0",
			FLOPS:         *edgeFLOPS,
			Model:         sys.Params(),
			CloudAddr:     cloud.Addr(),
			TimeScale:     runtime.Scale(*scale),
			MaxBacklogSec: *queueBudget,
			Batch:         runtime.BatchConfig{MaxSize: *batchSize, MaxDelaySec: *batchDelay, Marginal: *batchMarg},
		})
		if err != nil {
			return err
		}
		defer edge.Close()
		addr = edge.Addr()
		fmt.Fprintf(os.Stderr, "leime-loadgen: in-process testbed on %s (edge %.3g FLOPS, cloud %.3g FLOPS, scale %g)\n",
			addr, *edgeFLOPS, *cloudFLOPS, *scale)
	}

	cfg := loadgen.Config{
		EdgeAddr:    addr,
		Devices:     *devices,
		Rate:        *rate,
		Arrival:     *arrival,
		Duration:    *duration,
		Seed:        *seed,
		Model:       sys.Params(),
		DeviceFLOPS: *devFLOPS,
		Timeout:     *timeout,
	}

	var report any
	completed := 0
	if *rateSweep != "" {
		rates, err := parseRates(*rateSweep)
		if err != nil {
			return err
		}
		sweep, err := loadgen.Sweep(ctx, cfg, rates)
		if err != nil {
			return err
		}
		for _, p := range sweep.Points {
			completed += p.Completed
		}
		report = sweep
	} else {
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			return err
		}
		completed = res.Completed
		report = res
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *minDone > 0 && completed < *minDone {
		return fmt.Errorf("completed %d tasks, below the -min-completed floor %d", completed, *minDone)
	}
	return nil
}

// parseRates parses the -rate-sweep list.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -rate-sweep entry %q: want positive rates", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rate-sweep %q contains no rates", s)
	}
	return out, nil
}
