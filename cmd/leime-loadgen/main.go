// Command leime-loadgen is the open-loop load harness: N synthetic devices
// offer first-block work to an edge fleet at a configured rate and the tool
// reports achieved throughput, the completion-latency distribution and the
// rejection/shed counts as JSON. Point it at live edges with -edge (comma
// separated; devices split across them), or let it spin up an in-process
// testbed (the default) of -edges peered edge servers plus a cloud to probe
// batching, admission-control and federation settings without deploying
// anything.
//
// A single run measures one offered rate; -rate-sweep walks a list of rates
// and emits the saturation report the capacity model in DESIGN.md §11 is
// calibrated against: achieved-vs-offered locates the knee, p99-vs-offered
// shows the latency cliff past it. -edge-sweep instead walks fleet sizes at
// a fixed rate and reports the federation scaling factor per size (DESIGN.md
// §14). -kill-edge/-kill-after inject a mid-run edge failure to exercise the
// harness's reroute path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"leime"
	"leime/internal/fleet"
	"leime/internal/loadgen"
	"leime/internal/offload"
	"leime/internal/policyflag"
	"leime/internal/runtime"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leime-loadgen:", err)
		os.Exit(1)
	}
}

// run is the tool body; main wires it to os.Args, stdout and signals, and
// tests drive it directly.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("leime-loadgen", flag.ContinueOnError)
	var (
		edgeAddr  = fs.String("edge", "", "comma-separated edge servers to drive (empty = spin up an in-process testbed)")
		arch      = fs.String("arch", "inception-v3", "DNN profile (payload sizes and exit rates)")
		devices   = fs.Int("devices", 4, "synthetic devices to register")
		rate      = fs.Float64("rate", 5, "offered rate per device in tasks/sec")
		rateSweep = fs.String("rate-sweep", "", "comma-separated per-device rates; runs each and emits a saturation report")
		arrival   = fs.String("arrival", "poisson", "arrival process: poisson or constant")
		duration  = fs.Duration("duration", 2*time.Second, "generation horizon per run")
		seed      = fs.Int64("seed", 1, "schedule seed (equal seeds offer identical schedules)")
		timeout   = fs.Duration("timeout", 0, "per-task deadline (0 = none); expiries count as sheds")
		forceExit = fs.Int("exit", 0, "pin every task's exit stage 1..3 (0 = sample from the model's exit rates)")
		devFLOPS  = fs.Float64("device-flops", 1e9, "capability each synthetic device registers with")
		minDone   = fs.Int("min-completed", 0, "exit nonzero unless at least this many tasks complete (CI smoke)")

		deadline        = fs.Float64("deadline", 0, "per-task latency budget base in seconds from each task's scheduled arrival, jittered ±25%% per task; rides the RPC so deadline admission can read it (0 = none)")
		tenantDeadlines = fs.String("tenant-deadlines", "", "comma-separated per-device deadline bases in seconds (device i draws entry i mod len); overrides -deadline")

		edgeCount  = fs.Int("edges", 1, "in-process testbed: number of peered edge servers")
		edgeSweep  = fs.String("edge-sweep", "", "comma-separated in-process fleet sizes; runs each and reports federation scaling")
		killEdge   = fs.Int("kill-edge", -1, "in-process testbed: edge index to kill mid-run (-1 = none)")
		killAfter  = fs.Duration("kill-after", 500*time.Millisecond, "in-process testbed: delay before -kill-edge strikes")
		edgeFLOPS  = fs.Float64("edge-flops", leime.EdgeDesktop.FLOPS, "in-process testbed: edge capability in FLOPS")
		cloudFLOPS = fs.Float64("cloud-flops", leime.CloudV100.FLOPS, "in-process testbed: cloud capability in FLOPS")
		scale      = fs.Float64("scale", 1, "in-process testbed: time compression factor")
		policyVals = policyflag.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := policyVals.Policy()
	if err != nil {
		return err
	}
	tenantBases, err := parseRatesAllowEmpty(*tenantDeadlines, "-tenant-deadlines")
	if err != nil {
		return err
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	tb := testbedSpec{
		model:      sys.Params(),
		edgeFLOPS:  *edgeFLOPS,
		cloudFLOPS: *cloudFLOPS,
		scale:      runtime.Scale(*scale),
		policy:     policy,
	}

	cfg := loadgen.Config{
		Devices:           *devices,
		Rate:              *rate,
		Arrival:           *arrival,
		Duration:          *duration,
		Seed:              *seed,
		Model:             sys.Params(),
		DeviceFLOPS:       *devFLOPS,
		Timeout:           *timeout,
		ForceExit:         *forceExit,
		DeadlineSec:       *deadline,
		TenantDeadlineSec: tenantBases,
	}

	var addrs []string
	if *edgeAddr != "" {
		if *edgeSweep != "" {
			return fmt.Errorf("-edge-sweep needs the in-process testbed; drop -edge")
		}
		if *killEdge >= 0 {
			return fmt.Errorf("-kill-edge needs the in-process testbed; drop -edge")
		}
		addrs = splitAddrs(*edgeAddr)
	} else if *edgeSweep == "" {
		fleetTB, err := startFleet(tb, *edgeCount)
		if err != nil {
			return err
		}
		defer fleetTB.close()
		addrs = fleetTB.addrs()
		fmt.Fprintf(os.Stderr, "leime-loadgen: in-process testbed, %d edge(s) on %s (edge %.3g FLOPS, cloud %.3g FLOPS, scale %g)\n",
			len(addrs), strings.Join(addrs, ","), *edgeFLOPS, *cloudFLOPS, *scale)
		if *killEdge >= 0 {
			if *killEdge >= len(fleetTB.edges) {
				return fmt.Errorf("-kill-edge %d out of range (fleet has %d edges)", *killEdge, len(fleetTB.edges))
			}
			go func(victim *runtime.Edge, after time.Duration) {
				t := time.NewTimer(after)
				defer t.Stop()
				select {
				case <-t.C:
					fmt.Fprintf(os.Stderr, "leime-loadgen: killing edge %d (%s)\n", *killEdge, victim.Addr())
					_ = victim.Close()
				case <-ctx.Done():
				}
			}(fleetTB.edges[*killEdge], *killAfter)
		}
	}
	cfg.EdgeAddrs = addrs

	var report any
	completed := 0
	switch {
	case *edgeSweep != "":
		sizes, err := parseSizes(*edgeSweep)
		if err != nil {
			return err
		}
		fed, err := runEdgeSweep(ctx, cfg, tb, sizes)
		if err != nil {
			return err
		}
		for _, p := range fed.Points {
			completed += p.Result.Completed
		}
		report = fed
	case *rateSweep != "":
		rates, err := parseRates(*rateSweep)
		if err != nil {
			return err
		}
		sweep, err := loadgen.Sweep(ctx, cfg, rates)
		if err != nil {
			return err
		}
		for _, p := range sweep.Points {
			completed += p.Completed
		}
		report = sweep
	default:
		res, err := loadgen.Run(ctx, cfg)
		if err != nil {
			return err
		}
		completed = res.Completed
		report = res
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *minDone > 0 && completed < *minDone {
		return fmt.Errorf("completed %d tasks, below the -min-completed floor %d", completed, *minDone)
	}
	return nil
}

// testbedSpec carries the in-process testbed knobs shared by every fleet
// the tool spins up.
type testbedSpec struct {
	model      offload.ModelParams
	edgeFLOPS  float64
	cloudFLOPS float64
	scale      runtime.Scale
	policy     runtime.ControlPolicy
}

// fleetTestbed is one in-process cloud plus a peered edge fleet.
type fleetTestbed struct {
	cloud *runtime.Cloud
	edges []*runtime.Edge
}

// startFleet brings up the cloud and n edges. Edges are started in sequence
// and each peers with all earlier ones, so every edge except the first has
// somewhere to steal to (listen addresses are ephemeral, so a full mesh
// cannot be configured up front).
func startFleet(tb testbedSpec, n int) (*fleetTestbed, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet size %d must be positive", n)
	}
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       tb.cloudFLOPS,
		Block3FLOPs: tb.model.Mu[2],
		TimeScale:   tb.scale,
	})
	if err != nil {
		return nil, err
	}
	f := &fleetTestbed{cloud: cloud}
	for i := 0; i < n; i++ {
		cfg := runtime.EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     tb.edgeFLOPS,
			Model:     tb.model,
			CloudAddr: cloud.Addr(),
			TimeScale: tb.scale,
			Policy:    tb.policy,
		}
		if i > 0 {
			cfg.Peers = f.addrs()
			cfg.Fleet = fleet.Config{Every: 100 * time.Millisecond}
		}
		e, err := runtime.StartEdge(cfg)
		if err != nil {
			f.close()
			return nil, err
		}
		f.edges = append(f.edges, e)
	}
	return f, nil
}

// addrs lists the fleet's edge listen addresses in start order.
func (f *fleetTestbed) addrs() []string {
	out := make([]string, len(f.edges))
	for i, e := range f.edges {
		out[i] = e.Addr()
	}
	return out
}

// close tears the fleet down, edges first.
func (f *fleetTestbed) close() {
	for _, e := range f.edges {
		_ = e.Close()
	}
	_ = f.cloud.Close()
}

// fedPoint is one fleet size's run in an edge sweep.
type fedPoint struct {
	// Edges is the fleet size of this point.
	Edges int `json:"edges"`
	// Result is the load report against that fleet.
	Result *loadgen.Result `json:"result"`
}

// fedReport is the federation scaling report of an -edge-sweep run.
type fedReport struct {
	// Points are the per-size runs, in sweep order.
	Points []fedPoint `json:"points"`
	// Scaling[i] is Points[i]'s sustained throughput (completions) over
	// Points[0]'s: how much capacity each fleet size buys relative to the
	// first. Linear federation scaling at sizes {1..N} reads 1, 2, .., N.
	Scaling []float64 `json:"scaling"`
}

// runEdgeSweep measures federation scaling: the same schedule offered to an
// in-process fleet of each size, fresh edges per point so tenant state and
// backlog never carry over.
func runEdgeSweep(ctx context.Context, base loadgen.Config, tb testbedSpec, sizes []int) (*fedReport, error) {
	out := &fedReport{}
	for i, n := range sizes {
		f, err := startFleet(tb, n)
		if err != nil {
			return nil, fmt.Errorf("edge-sweep point %d edges: %w", n, err)
		}
		cfg := base
		cfg.EdgeAddr = ""
		cfg.EdgeAddrs = f.addrs()
		cfg.IDPrefix = fmt.Sprintf("fed-e%d", i)
		res, err := loadgen.Run(ctx, cfg)
		f.close()
		if err != nil {
			return nil, fmt.Errorf("edge-sweep point %d edges: %w", n, err)
		}
		out.Points = append(out.Points, fedPoint{Edges: n, Result: res})
	}
	base1 := out.Points[0].Result.Completed
	for _, p := range out.Points {
		s := 0.0
		if base1 > 0 {
			s = float64(p.Result.Completed) / float64(base1)
		}
		out.Scaling = append(out.Scaling, s)
	}
	return out, nil
}

// splitAddrs parses the comma-separated -edge list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSizes parses the -edge-sweep list of fleet sizes.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -edge-sweep entry %q: want positive fleet sizes", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-edge-sweep %q contains no sizes", s)
	}
	return out, nil
}

// parseRates parses the -rate-sweep list.
func parseRates(s string) ([]float64, error) {
	out, err := parseRatesAllowEmpty(s, "-rate-sweep")
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rate-sweep %q contains no rates", s)
	}
	return out, nil
}

// parseRatesAllowEmpty parses a comma-separated list of positive floats,
// returning nil for an empty list (the flag left at its default).
func parseRatesAllowEmpty(s, flagName string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad %s entry %q: want positive values", flagName, part)
		}
		out = append(out, r)
	}
	return out, nil
}
