// Command leime-device runs one end device of the LEIME testbed: it
// registers with an edge server, generates inference tasks, runs the online
// offloading controller and prints completion statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"leime"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/partition"
	"leime/internal/rpc"
	"leime/internal/runtime"
	"leime/internal/telemetry"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "leime-device:", err)
		os.Exit(1)
	}
}

// run is the daemon body; main wires it to os.Args, stdout and signals, and
// tests drive it directly with a synthetic stop channel. On stop the device
// abandons remaining slots, drains in-flight tasks and still prints its
// statistics.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("leime-device", flag.ContinueOnError)
	var (
		id       = fs.String("id", "device-1", "device identifier")
		edgeAddr = fs.String("edge", "127.0.0.1:7102", "comma-separated edge server addresses; more than one enables Lyapunov-aware edge selection")
		arch     = fs.String("arch", "inception-v3", "DNN profile (must match the edge)")
		device   = fs.String("device", "pi", "hardware preset: pi or nano")
		rate     = fs.Float64("rate", 5, "mean task arrivals per slot")
		slots    = fs.Int("slots", 60, "number of slots to generate")
		bw       = fs.Float64("bandwidth", 10, "uplink bandwidth in Mbps")
		lat      = fs.Float64("latency", 0.02, "uplink latency in seconds")
		policy   = fs.String("policy", "leime", "offloading policy: leime, device-only, edge-only, cap")
		scale    = fs.Float64("scale", 1, "time compression factor (1 = real time)")
		seed     = fs.Int64("seed", 1, "randomness seed")
		admin    = fs.String("admin", "", "admin HTTP address serving /metrics, /healthz, /readyz and /debug/traces (empty = telemetry off)")

		pipeline = fs.String("pipeline", "", "comma-separated edge worker addresses forming an inference chain; when set the device solves the min-latency cut with the partition solver and streams every task through the chain instead of classic offloading")
		pipeID   = fs.String("pipeline-id", "", "name the installed chain is addressed by; devices sharing it share stage state (default: the device id)")
		pipeFLOP = fs.String("pipeline-flops", "", "comma-separated per-worker FLOPS of the chain, matching -pipeline; a single value broadcasts to every worker (default: the desktop edge preset)")
		pipeBW   = fs.Float64("pipeline-bandwidth", 200, "worker-to-worker bandwidth in Mbps priced into the cut (the device-to-first-worker hop uses -bandwidth/-latency)")
		pipeLat  = fs.Float64("pipeline-latency", 0.002, "worker-to-worker latency in seconds priced into the cut")

		deadline   = fs.Float64("deadline", 0, "per-task completion budget in model seconds; RPCs carry it so remote tiers shed late work (0 = no deadlines)")
		retries    = fs.Int("retries", 0, "max attempts for idempotent control requests, first try included (0 = library default)")
		retryBase  = fs.Duration("retry-base", 0, "base backoff before the first retry (0 = library default)")
		breakAfter = fs.Int("break-after", 0, "consecutive transport failures that open the edge circuit breaker (0 = library default)")
		breakCool  = fs.Duration("break-cooldown", 0, "how long the breaker stays open before probing the edge again (0 = library default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var node leime.Node
	switch *device {
	case "pi":
		node = leime.RaspberryPi3B
	case "nano":
		node = leime.JetsonNano
	default:
		return fmt.Errorf("unknown device %q (want pi or nano)", *device)
	}
	var pol offload.Policy
	switch *policy {
	case "leime":
		pol = offload.Lyapunov()
	case "device-only":
		pol = offload.DeviceOnly()
	case "edge-only":
		pol = offload.EdgeOnly()
	case "cap":
		pol = offload.CapabilityBased()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	// Readiness flips once the device has registered with an edge and holds
	// a warm KKT share — before that it must not be treated as a traffic
	// source by orchestration probing /readyz.
	var registered atomic.Bool
	var tracer *telemetry.Tracer
	var reg *telemetry.Registry
	if *admin != "" {
		tracer = telemetry.NewTracer(4096)
		reg = telemetry.NewRegistry()
		runtime.RegisterWireMetrics(reg)
		adm, err := telemetry.ServeAdmin(*admin, reg, tracer, telemetry.WithReadiness(registered.Load))
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "leime-device: admin on %s\n", adm.Addr())
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(node)})
	if err != nil {
		return err
	}
	edges := splitEdges(*edgeAddr)
	if len(edges) == 0 {
		return fmt.Errorf("-edge %q lists no addresses", *edgeAddr)
	}
	fmt.Fprintf(out, "leime-device %s: %s on %s, edge %s, policy %s, %d slots at rate %.1f\n",
		*id, *arch, node.Name, strings.Join(edges, ","), pol.Name, *slots, *rate)

	// Pipelined mode: price the chain with the partition solver before any
	// traffic flows. The first hop is the device uplink; every later hop is
	// the worker-to-worker link. ArrivalMean is per slot with TauSec = 1, so
	// it is already a per-second rate for the queueing term.
	var pipeAddrs []string
	var pipeStages []runtime.PipelineStage
	if *pipeline != "" {
		addrs := splitEdges(*pipeline)
		workerFLOPS, err := parseFLOPSList(*pipeFLOP, len(addrs))
		if err != nil {
			return err
		}
		chain := partition.Chain{
			Workers: make([]partition.Worker, len(addrs)),
			Hops:    make([]partition.Hop, len(addrs)),
		}
		for j := range addrs {
			chain.Workers[j] = partition.Worker{FLOPS: workerFLOPS[j]}
			if j == 0 {
				chain.Hops[j] = partition.Hop{BandwidthBps: leime.Mbps(*bw), LatencySec: *lat}
			} else {
				chain.Hops[j] = partition.Hop{BandwidthBps: leime.Mbps(*pipeBW), LatencySec: *pipeLat}
			}
		}
		plan, err := partition.Solve(partition.Config{Net: sys.MEDNN(), Chain: chain, ArrivalRate: *rate})
		if err != nil {
			return err
		}
		pipeAddrs = addrs[:len(plan.Stages)]
		pipeStages = runtime.PipelineFromPlan(plan)
		fmt.Fprintf(out, "leime-device %s: pipeline cut %v over %d of %d workers (expected %.4fs/task, sustains %.2f/s)\n",
			*id, plan.Cuts, len(plan.Stages), len(addrs), plan.ExpectedLatencySec, plan.SustainableRate)
	}

	stats, err := runtime.RunDevice(runtime.DeviceConfig{
		ID:            *id,
		FLOPS:         node.FLOPS,
		Model:         sys.Params(),
		EdgeAddrs:     edges,
		PipelineAddrs: pipeAddrs,
		Pipeline:      pipeStages,
		PipelineID:    *pipeID,
		Ready:         func() { registered.Store(true) },
		Uplink: netem.Link{
			BandwidthBps: leime.Mbps(*bw),
			Latency:      time.Duration(*lat * float64(time.Second)),
		},
		ArrivalMean:     *rate,
		Policy:          &pol,
		TauSec:          1,
		V:               1e4,
		Slots:           *slots,
		WarmupSlots:     *slots / 10,
		TimeScale:       runtime.Scale(*scale),
		TaskDeadlineSec: *deadline,
		Retry:           rpc.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase},
		Breaker:         rpc.BreakerConfig{FailureThreshold: *breakAfter, Cooldown: *breakCool},
		Seed:            *seed,
		Tracer:          tracer,
		Metrics:         reg,
		Stop:            stop,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tasks: generated=%d completed=%d errors=%d exits=[%d %d %d]\n",
		stats.Generated, stats.Completed, stats.Errors,
		stats.ExitCounts[0], stats.ExitCounts[1], stats.ExitCounts[2])
	fmt.Fprintf(out, "TCT: mean=%.4fs p50=%.4fs p99=%.4fs max=%.4fs (model seconds)\n",
		stats.TCT.Mean(), stats.TCT.Percentile(50), stats.TCT.Percentile(99), stats.TCT.Max())
	fmt.Fprintf(out, "mean offloading ratio: %.3f\n", stats.Ratio.Mean())
	fmt.Fprintf(out, "faults: degraded=%d fallbacks=%d deadline-misses=%d retries=%d breaker-opens=%d migrations=%d\n",
		stats.Degraded, stats.Fallbacks, stats.DeadlineMisses, stats.Retries, stats.BreakerOpens, stats.Migrations)
	return nil
}

// parseFLOPSList expands the comma-separated -pipeline-flops list to one
// value per chain worker: empty defaults every worker to the desktop edge
// preset, a single value broadcasts, and otherwise the list length must
// match the chain.
func parseFLOPSList(s string, n int) ([]float64, error) {
	out := make([]float64, n)
	if strings.TrimSpace(s) == "" {
		for i := range out {
			out[i] = leime.EdgeDesktop.FLOPS
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 1 && len(parts) != n {
		return nil, fmt.Errorf("-pipeline-flops lists %d values for %d workers", len(parts), n)
	}
	for i := range out {
		p := parts[0]
		if len(parts) == n {
			p = parts[i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-pipeline-flops entry %q is not a positive FLOPS value", p)
		}
		out[i] = v
	}
	return out, nil
}

// splitEdges parses the comma-separated -edge list.
func splitEdges(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
