// Command leime-device runs one end device of the LEIME testbed: it
// registers with an edge server, generates inference tasks, runs the online
// offloading controller and prints completion statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"leime"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-device:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.String("id", "device-1", "device identifier")
		edgeAddr = flag.String("edge", "127.0.0.1:7102", "edge server address")
		arch     = flag.String("arch", "inception-v3", "DNN profile (must match the edge)")
		device   = flag.String("device", "pi", "hardware preset: pi or nano")
		rate     = flag.Float64("rate", 5, "mean task arrivals per slot")
		slots    = flag.Int("slots", 60, "number of slots to generate")
		bw       = flag.Float64("bandwidth", 10, "uplink bandwidth in Mbps")
		lat      = flag.Float64("latency", 0.02, "uplink latency in seconds")
		policy   = flag.String("policy", "leime", "offloading policy: leime, device-only, edge-only, cap")
		scale    = flag.Float64("scale", 1, "time compression factor (1 = real time)")
		seed     = flag.Int64("seed", 1, "randomness seed")
	)
	flag.Parse()

	var node leime.Node
	switch *device {
	case "pi":
		node = leime.RaspberryPi3B
	case "nano":
		node = leime.JetsonNano
	default:
		return fmt.Errorf("unknown device %q (want pi or nano)", *device)
	}
	var pol offload.Policy
	switch *policy {
	case "leime":
		pol = offload.Lyapunov()
	case "device-only":
		pol = offload.DeviceOnly()
	case "edge-only":
		pol = offload.EdgeOnly()
	case "cap":
		pol = offload.CapabilityBased()
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(node)})
	if err != nil {
		return err
	}
	fmt.Printf("leime-device %s: %s on %s, edge %s, policy %s, %d slots at rate %.1f\n",
		*id, *arch, node.Name, *edgeAddr, pol.Name, *slots, *rate)

	stats, err := runtime.RunDevice(runtime.DeviceConfig{
		ID:       *id,
		FLOPS:    node.FLOPS,
		Model:    sys.Params(),
		EdgeAddr: *edgeAddr,
		Uplink: netem.Link{
			BandwidthBps: leime.Mbps(*bw),
			Latency:      time.Duration(*lat * float64(time.Second)),
		},
		ArrivalMean: *rate,
		Policy:      &pol,
		TauSec:      1,
		V:           1e4,
		Slots:       *slots,
		WarmupSlots: *slots / 10,
		TimeScale:   runtime.Scale(*scale),
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tasks: generated=%d completed=%d errors=%d exits=[%d %d %d]\n",
		stats.Generated, stats.Completed, stats.Errors,
		stats.ExitCounts[0], stats.ExitCounts[1], stats.ExitCounts[2])
	fmt.Printf("TCT: mean=%.4fs p50=%.4fs p99=%.4fs max=%.4fs (model seconds)\n",
		stats.TCT.Mean(), stats.TCT.Percentile(50), stats.TCT.Percentile(99), stats.TCT.Max())
	fmt.Printf("mean offloading ratio: %.3f\n", stats.Ratio.Mean())
	return nil
}
