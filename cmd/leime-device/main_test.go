package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"leime"
	"leime/internal/runtime"
)

// syncBuffer is a goroutine-safe output sink for in-process daemon runs.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var adminLine = regexp.MustCompile(`admin on (\S+)`)

func waitForAdmin(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := adminLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("admin address never printed; output:\n%s", out.String())
	return ""
}

// TestDeviceDaemonStopsEarlyAndReportsStats interrupts a long device run via
// the stop channel (the SIGINT/SIGTERM path) and checks that it drains
// in-flight tasks, prints statistics and serves its admin endpoints.
func TestDeviceDaemonStopsEarlyAndReportsStats(t *testing.T) {
	sys, err := leime.Build(leime.Options{Arch: "inception-v3", Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     leime.EdgeDesktop.FLOPS,
		Model:     sys.Params(),
		TimeScale: 0.01,
	})
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	defer edge.Close()

	out := &syncBuffer{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		// A horizon far longer than the test: only the stop channel ends it.
		done <- run([]string{
			"-edge", edge.Addr(), "-slots", "100000", "-scale", "0.01",
			"-admin", "127.0.0.1:0",
		}, out, stop)
	}()
	admin := waitForAdmin(t, out)

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", admin))
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: code %d body %q", resp.StatusCode, body)
	}

	// Let a few slots elapse so there is work to drain, then interrupt.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("device did not stop after the stop signal")
	}
	if !strings.Contains(out.String(), "tasks: generated=") {
		t.Errorf("no final statistics in output:\n%s", out.String())
	}
}

// TestDeviceDaemonPipelinedMode drives the -pipeline flags end to end: three
// in-process edge workers, one device that solves the cut, installs the
// chain and streams its whole run through it.
func TestDeviceDaemonPipelinedMode(t *testing.T) {
	sys, err := leime.Build(leime.Options{Arch: "inception-v3", Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var addrs []string
	for i := 0; i < 3; i++ {
		edge, err := runtime.StartEdge(runtime.EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     leime.EdgeDesktop.FLOPS,
			Model:     sys.Params(),
			TimeScale: 0.01,
		})
		if err != nil {
			t.Fatalf("StartEdge %d: %v", i, err)
		}
		defer edge.Close()
		addrs = append(addrs, edge.Addr())
	}

	out := &syncBuffer{}
	stop := make(chan struct{})
	err = run([]string{
		"-pipeline", strings.Join(addrs, ","), "-pipeline-id", "daemon-test",
		"-slots", "20", "-rate", "2", "-scale", "0.01", "-seed", "3",
	}, out, stop)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "pipeline cut [") {
		t.Errorf("no solved-cut line in output:\n%s", got)
	}
	if !strings.Contains(got, "errors=0") {
		t.Errorf("pipelined run reported errors:\n%s", got)
	}
	// Every pipelined task offloads at its first layer, so the mean ratio
	// is pinned to 1.
	if !strings.Contains(got, "mean offloading ratio: 1.000") {
		t.Errorf("pipelined mode did not pin the offloading ratio:\n%s", got)
	}
}
