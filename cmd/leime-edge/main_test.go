package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for in-process daemon runs.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var adminLine = regexp.MustCompile(`admin on (\S+)`)

func waitForAdmin(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := adminLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("admin address never printed; output:\n%s", out.String())
	return ""
}

func TestEdgeDaemonServesAdminAndStopsCleanly(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0"}, out, stop)
	}()
	admin := waitForAdmin(t, out)

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", admin))
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: code %d body %q", resp.StatusCode, body)
	}
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", admin))
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("metrics: code %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q lacks Prometheus version", ct)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop after the stop signal")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown message in output:\n%s", out.String())
	}
}
