package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"leime/internal/rpc"
	"leime/internal/runtime"
)

// syncBuffer is a goroutine-safe output sink for in-process daemon runs.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var adminLine = regexp.MustCompile(`admin on (\S+)`)

func waitForAdmin(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := adminLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("admin address never printed; output:\n%s", out.String())
	return ""
}

func TestEdgeDaemonServesAdminAndStopsCleanly(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0"}, out, stop)
	}()
	admin := waitForAdmin(t, out)

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", admin))
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: code %d body %q", resp.StatusCode, body)
	}
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", admin))
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("metrics: code %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type %q lacks Prometheus version", ct)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop after the stop signal")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown message in output:\n%s", out.String())
	}
}

var servingLine = regexp.MustCompile(`serving \S+ on (\S+)`)

// TestEdgeDaemonReadyz pins the readiness protocol at the daemon level: the
// edge answers /readyz with 503 until its first tenant registers (the KKT
// allocation warms), then 200.
func TestEdgeDaemonReadyz(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0"}, out, stop)
	}()
	defer func() {
		close(stop)
		<-done
	}()
	admin := waitForAdmin(t, out)

	get := func(path string) int {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", admin, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before any tenant = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d while cold; liveness must not follow readiness", code)
	}

	deadline := time.Now().Add(5 * time.Second)
	var m []string
	for m = servingLine.FindStringSubmatch(out.String()); m == nil && time.Now().Before(deadline); m = servingLine.FindStringSubmatch(out.String()) {
		time.Sleep(5 * time.Millisecond)
	}
	if m == nil {
		t.Fatalf("edge address never printed; output:\n%s", out.String())
	}
	runtime.RegisterMessages()
	c, err := rpc.Dial(m[1], nil)
	if err != nil {
		t.Fatalf("Dial edge: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), runtime.RegisterReq{DeviceID: "readyz-probe", FLOPS: 1e9, ArrivalMean: 1}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after registration = %d, want 200", code)
	}
}
