// Command leime-edge runs the edge tier of the LEIME testbed: it serves
// first- and second-block inference for registered devices with KKT resource
// shares, forwarding third-block work to a cloud server.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leime"
	"leime/internal/netem"
	"leime/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-edge:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7102", "listen address")
		arch      = flag.String("arch", "inception-v3", "DNN profile")
		flops     = flag.Float64("flops", leime.EdgeDesktop.FLOPS, "edge capability in FLOPS")
		cloudAddr = flag.String("cloud", "", "cloud server address (empty = no cloud tier)")
		cloudBW   = flag.Float64("cloud-bandwidth", 50, "edge-cloud bandwidth in Mbps")
		cloudLat  = flag.Float64("cloud-latency", 0.03, "edge-cloud latency in seconds")
		scale     = flag.Float64("scale", 1, "time compression factor (1 = real time)")
	)
	flag.Parse()

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      *addr,
		FLOPS:     *flops,
		Model:     sys.Params(),
		CloudAddr: *cloudAddr,
		CloudLink: netem.Link{
			BandwidthBps: leime.Mbps(*cloudBW),
			Latency:      time.Duration(*cloudLat * float64(time.Second)),
		},
		TimeScale: runtime.Scale(*scale),
	})
	if err != nil {
		return err
	}
	defer edge.Close()
	e1, e2, e3 := sys.Exits()
	fmt.Printf("leime-edge: serving %s{exit-%d,exit-%d,exit-%d} on %s (%.3g FLOPS, cloud %q, scale %g)\n",
		*arch, e1, e2, e3, edge.Addr(), *flops, *cloudAddr, *scale)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("leime-edge: shutting down")
	return nil
}
