// Command leime-edge runs the edge tier of the LEIME testbed: it serves
// first- and second-block inference for registered devices with KKT resource
// shares, forwarding third-block work to a cloud server.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"leime"
	"leime/internal/netem"
	"leime/internal/policyflag"
	"leime/internal/rpc"
	"leime/internal/runtime"
	"leime/internal/telemetry"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "leime-edge:", err)
		os.Exit(1)
	}
}

// run is the daemon body; main wires it to os.Args, stdout and signals, and
// tests drive it directly with a synthetic stop channel.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("leime-edge", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7102", "listen address")
		arch      = fs.String("arch", "inception-v3", "DNN profile")
		flops     = fs.Float64("flops", leime.EdgeDesktop.FLOPS, "edge capability in FLOPS")
		cloudAddr = fs.String("cloud", "", "cloud server address (empty = no cloud tier)")
		cloudBW   = fs.Float64("cloud-bandwidth", 50, "edge-cloud bandwidth in Mbps")
		cloudLat  = fs.Float64("cloud-latency", 0.03, "edge-cloud latency in seconds")
		scale     = fs.Float64("scale", 1, "time compression factor (1 = real time)")
		admin     = fs.String("admin", "", "admin HTTP address serving /metrics, /healthz, /readyz and /debug/traces (empty = telemetry off)")
		peers     = fs.String("peers", "", "comma-separated sibling edge addresses; admission-rejected tasks are stolen to the least-loaded ready peer (one hop)")
		peerBW    = fs.Float64("peer-bandwidth", 200, "edge-to-edge bandwidth in Mbps shaping pipeline activation forwards (0 = unshaped)")
		peerLat   = fs.Float64("peer-latency", 0.002, "edge-to-edge latency in seconds on the pipeline forward path")

		retries    = fs.Int("cloud-retries", 0, "max attempts for idempotent cloud requests, first try included (0 = library default)")
		retryBase  = fs.Duration("cloud-retry-base", 0, "base backoff before the first cloud retry (0 = library default)")
		breakAfter = fs.Int("cloud-break-after", 0, "consecutive transport failures that open the cloud circuit breaker (0 = library default)")
		breakCool  = fs.Duration("cloud-break-cooldown", 0, "how long the cloud breaker stays open before probing again (0 = library default)")

		policyVals = policyflag.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := policyVals.Policy()
	if err != nil {
		return err
	}

	var tracer *telemetry.Tracer
	var reg *telemetry.Registry
	if *admin != "" {
		tracer = telemetry.NewTracer(4096)
		reg = telemetry.NewRegistry()
		runtime.RegisterWireMetrics(reg)
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      *addr,
		FLOPS:     *flops,
		Model:     sys.Params(),
		CloudAddr: *cloudAddr,
		CloudLink: netem.Link{
			BandwidthBps: leime.Mbps(*cloudBW),
			Latency:      time.Duration(*cloudLat * float64(time.Second)),
		},
		PeerLink: netem.Link{
			BandwidthBps: leime.Mbps(*peerBW),
			Latency:      time.Duration(*peerLat * float64(time.Second)),
		},
		TimeScale:    runtime.Scale(*scale),
		CloudRetry:   rpc.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase},
		CloudBreaker: rpc.BreakerConfig{FailureThreshold: *breakAfter, Cooldown: *breakCool},
		Policy:       policy,
		Peers:        splitPeers(*peers),
		Tracer:       tracer,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	defer edge.Close()
	if *admin != "" {
		// Readiness is the federation gate: the edge answers 503 until its
		// KKT allocation is warm (at least one registered tenant), the same
		// predicate its fleet heartbeat advertises to peers.
		adm, err := telemetry.ServeAdmin(*admin, reg, tracer, telemetry.WithReadiness(edge.Ready))
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "leime-edge: admin on %s\n", adm.Addr())
	}
	e1, e2, e3 := sys.Exits()
	fmt.Fprintf(out, "leime-edge: serving %s{exit-%d,exit-%d,exit-%d} on %s (%.3g FLOPS, cloud %q, scale %g)\n",
		*arch, e1, e2, e3, edge.Addr(), *flops, *cloudAddr, *scale)

	<-stop
	fmt.Fprintln(out, "leime-edge: shutting down")
	return nil
}

// splitPeers parses the comma-separated -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
