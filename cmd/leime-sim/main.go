// Command leime-sim runs a custom simulation described by a JSON scenario
// file — architecture, fleet, network conditions, arrival processes and
// offloading policies — without writing Go.
//
// Example scenario (see -example to print one):
//
//	{
//	  "name": "mixed-fleet",
//	  "arch": "resnet-34",
//	  "edge_share": 0.5,
//	  "devices": [
//	    {"count": 3, "hardware": "pi", "rate": 2, "policy": "leime"},
//	    {"count": 1, "hardware": "nano", "rate": 5, "bandwidth_mbps": 20}
//	  ],
//	  "slots": 400,
//	  "simulator": "event"
//	}
package main

import (
	"flag"
	"fmt"
	"os"

	"leime/internal/metrics"
	"leime/internal/scenario"
)

const exampleScenario = `{
  "name": "mixed-fleet",
  "arch": "resnet-34",
  "edge_share": 0.5,
  "devices": [
    {"count": 3, "hardware": "pi", "rate": 2, "policy": "leime"},
    {"count": 1, "hardware": "nano", "rate": 5, "bandwidth_mbps": 20}
  ],
  "slots": 400,
  "simulator": "event"
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file    = flag.String("scenario", "", "path to a JSON scenario file (- for stdin)")
		example = flag.Bool("example", false, "print an example scenario and exit")
	)
	flag.Parse()

	if *example {
		fmt.Print(exampleScenario)
		return nil
	}
	if *file == "" {
		return fmt.Errorf("need -scenario <file> (or -example)")
	}
	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc, err := scenario.Load(in)
	if err != nil {
		return err
	}
	res, err := sc.Run()
	if err != nil {
		return err
	}
	fmt.Printf("scenario:      %s (%s, %s simulator)\n", res.Scenario, sc.Arch, sc.Simulator)
	fmt.Printf("fleet:         %d devices, %g tasks\n", res.Devices, res.Tasks)
	fmt.Printf("mean TCT:      %.4f s\n", res.MeanTCT)
	if res.P99TCT > 0 {
		fmt.Printf("P99 TCT:       %.4f s\n", res.P99TCT)
	}
	fmt.Printf("mean offload:  %.3f\n", res.MeanRatio)
	if sc.DeadlineSec > 0 {
		fmt.Printf("deadline:      %.0f%% of tasks missed the %.3fs budget\n", 100*res.DeadlineMissRate, sc.DeadlineSec)
	}
	if sc.Simulator == "slot" {
		fmt.Printf("final backlog: %.0f tasks\n", res.FinalBacklog)
	}
	if res.TCT != nil {
		fmt.Println("\nTCT distribution (s):")
		fmt.Print(metrics.Histogram{Buckets: 12}.Render(res.TCT))
	}
	return nil
}
