// Command leime-profile exports the offline artifacts a LEIME deployment
// ships: the analytic DNN profile (per-element FLOPs and tensor sizes) and
// the calibration result (per-exit confidence thresholds and exit rates).
//
//	leime-profile -arch inception-v3 -out profile.json -calibration cal.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"leime"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-profile:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		arch     = flag.String("arch", "inception-v3", "DNN profile: "+strings.Join(leime.Architectures(), ", "))
		out      = flag.String("out", "-", "profile output path (- for stdout)")
		calOut   = flag.String("calibration", "", "also write the calibration artifact to this path (- for stdout)")
		size     = flag.Int("samples", 1000, "calibration-set size")
		seed     = flag.Int64("seed", 1, "calibration seed")
		easyFrac = flag.Float64("easy", 0, "easy-sample fraction (0 = default mixture)")
	)
	flag.Parse()

	p, err := model.ByName(*arch)
	if err != nil {
		return err
	}
	if err := writeTo(*out, p.WriteJSON); err != nil {
		return err
	}

	if *calOut == "" {
		return nil
	}
	mix := dataset.CIFAR10Like
	if *easyFrac > 0 {
		mix = mix.WithEasyFrac(*easyFrac)
	}
	ds, err := dataset.Generate(mix, *size, *seed)
	if err != nil {
		return err
	}
	conf, err := confidence.New(p, confidence.DefaultParams(p.Name), *seed)
	if err != nil {
		return err
	}
	budget := confidence.DefaultLossBudget(p.Name)
	th, sigma := conf.Calibrate(ds, budget)
	art := confidence.CalibrationArtifact{
		Arch:       p.Name,
		LossBudget: budget,
		Thresholds: th,
		Sigma:      sigma,
	}
	return writeTo(*calOut, func(w io.Writer) error {
		return confidence.WriteArtifact(w, art)
	})
}

// writeTo streams fn's output to a path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
