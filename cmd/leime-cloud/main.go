// Command leime-cloud runs the cloud tier of the LEIME testbed: it serves
// third-block continuations forwarded by an edge server.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"leime"
	"leime/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leime-cloud:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", "127.0.0.1:7103", "listen address")
		arch  = flag.String("arch", "inception-v3", "DNN profile (fixes the third block's FLOPs)")
		flops = flag.Float64("flops", leime.CloudV100.FLOPS, "cloud capability in FLOPS")
		scale = flag.Float64("scale", 1, "time compression factor (1 = real time)")
	)
	flag.Parse()

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        *addr,
		FLOPS:       *flops,
		Block3FLOPs: sys.Params().Mu[2],
		TimeScale:   runtime.Scale(*scale),
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("leime-cloud: serving %s third blocks on %s (%.3g FLOPS, scale %g)\n",
		*arch, cloud.Addr(), *flops, *scale)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("leime-cloud: shutting down")
	return nil
}
