// Command leime-cloud runs the cloud tier of the LEIME testbed: it serves
// third-block continuations forwarded by an edge server.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"leime"
	"leime/internal/runtime"
	"leime/internal/telemetry"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "leime-cloud:", err)
		os.Exit(1)
	}
}

// run is the daemon body; main wires it to os.Args, stdout and signals, and
// tests drive it directly with a synthetic stop channel.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("leime-cloud", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:7103", "listen address")
		arch  = fs.String("arch", "inception-v3", "DNN profile (fixes the third block's FLOPs)")
		flops = fs.Float64("flops", leime.CloudV100.FLOPS, "cloud capability in FLOPS")
		scale = fs.Float64("scale", 1, "time compression factor (1 = real time)")
		admin = fs.String("admin", "", "admin HTTP address serving /metrics, /healthz, /readyz and /debug/traces (empty = telemetry off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tracer *telemetry.Tracer
	var reg *telemetry.Registry
	if *admin != "" {
		tracer = telemetry.NewTracer(4096)
		reg = telemetry.NewRegistry()
		runtime.RegisterWireMetrics(reg)
	}

	sys, err := leime.Build(leime.Options{Arch: *arch, Env: leime.TestbedEnv(leime.RaspberryPi3B)})
	if err != nil {
		return err
	}
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        *addr,
		FLOPS:       *flops,
		Block3FLOPs: sys.Params().Mu[2],
		TimeScale:   runtime.Scale(*scale),
		Tracer:      tracer,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	if *admin != "" {
		// The cloud is stateless: once StartCloud has returned it can serve
		// third-block work, so readiness coincides with liveness (the
		// default /readyz behaviour).
		adm, err := telemetry.ServeAdmin(*admin, reg, tracer)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "leime-cloud: admin on %s\n", adm.Addr())
	}
	fmt.Fprintf(out, "leime-cloud: serving %s third blocks on %s (%.3g FLOPS, scale %g)\n",
		*arch, cloud.Addr(), *flops, *scale)

	<-stop
	fmt.Fprintln(out, "leime-cloud: shutting down")
	return nil
}
