package main

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for in-process daemon runs.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var adminLine = regexp.MustCompile(`admin on (\S+)`)

// waitForAdmin polls the daemon's output for the printed admin address.
func waitForAdmin(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := adminLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("admin address never printed; output:\n%s", out.String())
	return ""
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestCloudDaemonServesAdminAndStopsCleanly(t *testing.T) {
	out := &syncBuffer{}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-admin", "127.0.0.1:0"}, out, stop)
	}()
	admin := waitForAdmin(t, out)

	if code, body := getBody(t, fmt.Sprintf("http://%s/healthz", admin)); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: code %d body %q", code, body)
	}
	if code, _ := getBody(t, fmt.Sprintf("http://%s/metrics", admin)); code != http.StatusOK {
		t.Errorf("metrics: code %d", code)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not stop after the stop signal")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown message in output:\n%s", out.String())
	}
}
